"""Per-graph statistics catalog: the cost model's input.

The planner's matching-order heuristic (:func:`repro.plan.planner
._matching_order`) looks only at the *pattern* — degree and
connectivity — and is blind to how labels are distributed in the data
graph.  On skewed graphs that blindness is expensive: anchoring the
search at a frequent hub label instead of a rare label can inflate the
candidate stream by orders of magnitude.  A :class:`GraphCatalog` is the
per-graph summary the cost model (:mod:`repro.plan.cost`) prices orders
against:

* **label frequencies** — how many vertices carry each label (a step-0
  pool size is exactly a label frequency);
* **degree histogram + quantiles** — the graph's degree shape (reported
  by ``describe()``; the quantiles make skew visible at a glance);
* **directed label-pair edge counts** — ``pair_counts[(a, b)]`` is the
  number of edge *endpoints* seen as "a vertex labeled ``a`` with a
  neighbor labeled ``b``" (each undirected edge contributes both
  orientations), so ``pair_counts[(a, b)] / frequency(a)`` is the
  expected number of ``b``-labeled neighbors of an ``a``-labeled vertex;
* **per-label average degree** — the expected anchor-row size when a
  candidate pool is drawn from an ``a``-labeled vertex's adjacency;
* **label triples** — the distinct ``(vertex label, edge label, vertex
  label)`` alphabet, both orientations: the same set
  :func:`repro.plan.fsm_guide.label_triples` scans the edge list for,
  carried here so level-wise FSM candidate generation reuses the cached
  catalog instead of re-walking the edges per run.

A catalog is **plain derived data**: building it twice from the same
graph yields equal catalogs (pinned by the determinism tests), it is
pickle-safe for the process backend, and sessions cache one per graph
variant exactly like the step-0 universe
(``Miner.cache_info().catalog_builds/catalog_hits``).
"""

from __future__ import annotations

from typing import Mapping

from ..graph import LabeledGraph

#: Degree quantiles reported by :meth:`GraphCatalog.degree_quantiles`
#: (fractions of the sorted degree sequence, min..max).
_QUANTILES = (0.0, 0.25, 0.5, 0.75, 0.9, 1.0)


class GraphCatalog:
    """Immutable statistics summary of one :class:`LabeledGraph`.

    Attributes are plain dicts/tuples (picklable, comparable); build via
    :func:`build_catalog`.  All mappings are insertion-ordered by sorted
    key, so two catalogs of the same graph are equal *and* serialize
    byte-identically.
    """

    __slots__ = (
        "num_vertices",
        "num_edges",
        "label_frequency",
        "degree_histogram",
        "degree_quantiles",
        "pair_counts",
        "average_degree_by_label",
        "triples",
    )

    def __init__(
        self,
        num_vertices: int,
        num_edges: int,
        label_frequency: Mapping[int, int],
        degree_histogram: Mapping[int, int],
        degree_quantiles: tuple[int, ...],
        pair_counts: Mapping[tuple[int, int], int],
        average_degree_by_label: Mapping[int, float],
        triples: frozenset[tuple[int, int, int]],
    ) -> None:
        self.num_vertices = num_vertices
        self.num_edges = num_edges
        self.label_frequency = dict(label_frequency)
        self.degree_histogram = dict(degree_histogram)
        self.degree_quantiles = tuple(degree_quantiles)
        self.pair_counts = dict(pair_counts)
        self.average_degree_by_label = dict(average_degree_by_label)
        self.triples = frozenset(triples)

    # ------------------------------------------------------------------
    # Selectivity primitives (the cost model's vocabulary)
    # ------------------------------------------------------------------
    def frequency(self, label: int) -> int:
        """Number of vertices carrying ``label`` (0 when absent)."""
        return self.label_frequency.get(label, 0)

    def fan_out(self, from_label: int, to_label: int) -> float:
        """Expected number of ``to_label``-labeled neighbors of a vertex
        labeled ``from_label`` (0.0 when either label is absent)."""
        freq = self.frequency(from_label)
        if freq == 0:
            return 0.0
        return self.pair_counts.get((from_label, to_label), 0) / freq

    def closure_probability(self, label_a: int, label_b: int) -> float:
        """Estimated probability that a random ``a``-labeled and a random
        ``b``-labeled vertex are adjacent (independence assumption,
        capped at 1.0) — the price of one extra back-edge in a
        selectivity chain."""
        fa, fb = self.frequency(label_a), self.frequency(label_b)
        if fa == 0 or fb == 0:
            return 0.0
        return min(1.0, self.pair_counts.get((label_a, label_b), 0) / (fa * fb))

    def anchor_degree(self, label: int) -> float:
        """Expected adjacency-row size of a ``label``-labeled anchor —
        what one candidate pool drawn from such an anchor costs."""
        return self.average_degree_by_label.get(label, 0.0)

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GraphCatalog):
            return NotImplemented
        return all(
            getattr(self, slot) == getattr(other, slot)
            for slot in GraphCatalog.__slots__
        )

    def __hash__(self) -> int:  # catalogs are values; allow set/dict use
        return hash(
            (
                self.num_vertices,
                self.num_edges,
                tuple(sorted(self.label_frequency.items())),
                tuple(sorted(self.pair_counts.items())),
            )
        )

    def __getstate__(self):
        return {slot: getattr(self, slot) for slot in GraphCatalog.__slots__}

    def __setstate__(self, state) -> None:
        for slot in GraphCatalog.__slots__:
            setattr(self, slot, state[slot])

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return (
            f"GraphCatalog(V={self.num_vertices}, E={self.num_edges}, "
            f"labels={len(self.label_frequency)})"
        )

    def describe(self) -> str:
        """One-line human-readable summary (CLI / explain reports)."""
        quantiles = "/".join(str(q) for q in self.degree_quantiles)
        return (
            f"V={self.num_vertices} E={self.num_edges}"
            f" labels={len(self.label_frequency)}"
            f" degree[min/p25/p50/p75/p90/max]={quantiles}"
            f" pairs={len(self.pair_counts)}"
        )


def build_catalog(graph: LabeledGraph) -> GraphCatalog:
    """One pass over ``graph``: its deterministic :class:`GraphCatalog`.

    O(V + E); sessions build it once per graph variant and cache it, so
    plan compilation never re-scans the graph.
    """
    frequency: dict[int, int] = {}
    degree_sum_by_label: dict[int, int] = {}
    degree_histogram: dict[int, int] = {}
    degrees = []
    for v in range(graph.num_vertices):
        label = graph.vertex_label(v)
        degree = graph.degree(v)
        frequency[label] = frequency.get(label, 0) + 1
        degree_sum_by_label[label] = degree_sum_by_label.get(label, 0) + degree
        degree_histogram[degree] = degree_histogram.get(degree, 0) + 1
        degrees.append(degree)
    degrees.sort()

    pair_counts: dict[tuple[int, int], int] = {}
    triples: set[tuple[int, int, int]] = set()
    for eid, u, v in graph.edge_iter():
        lu, lv = graph.vertex_label(u), graph.vertex_label(v)
        le = graph.edge_label(eid)
        pair_counts[(lu, lv)] = pair_counts.get((lu, lv), 0) + 1
        pair_counts[(lv, lu)] = pair_counts.get((lv, lu), 0) + 1
        triples.add((lu, le, lv))
        triples.add((lv, le, lu))

    if degrees:
        last = len(degrees) - 1
        quantiles = tuple(degrees[round(q * last)] for q in _QUANTILES)
    else:
        quantiles = tuple(0 for _ in _QUANTILES)

    return GraphCatalog(
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        label_frequency=dict(sorted(frequency.items())),
        degree_histogram=dict(sorted(degree_histogram.items())),
        degree_quantiles=quantiles,
        pair_counts=dict(sorted(pair_counts.items())),
        average_degree_by_label={
            label: degree_sum_by_label[label] / count
            for label, count in sorted(frequency.items())
        },
        triples=frozenset(triples),
    )
