"""Guided extension generation — the plan's runtime half.

The exhaustive engine pairs :func:`repro.core.extension.extensions`
("every neighbor of every member") with the Algorithm 2 canonicality
check.  The guided path replaces both:

* :func:`guided_candidates` draws candidates from the adjacency list of a
  single *anchor* — the lowest-degree already-matched back-neighbor of the
  next plan step — so the candidate pool shrinks from the embedding's
  whole frontier to one neighborhood;
* :func:`guided_extension_check` validates a candidate against the next
  plan step (label, back-edges with edge labels, back-non-edges under
  induced semantics, and the symmetry-breaking order restrictions).  The
  restrictions make the check a *uniqueness* guarantee: every occurrence
  of the query is generated through exactly one word sequence, which is
  why the guided path needs no embedding canonicality check;
* :func:`guided_survivors` fuses both into the form the runtime's step
  tasks actually execute: the whole constraint battery collapses into
  one chain of big-int ``&`` ops over the graph's bitsets, decoded to
  sorted vertex order once per embedding.

Both functions are pure and operate on ``(plan, graph, words)`` only, so
the runtime's step tasks can call them from any backend.  The check is
also handed to ODAG extraction as the spurious-path prefix filter: a path
through the overapproximated ODAG is a genuine partial match iff every
prefix extension passes the plan check, mirroring how the exhaustive path
re-applies canonicality plus the user filter (engine section 5.2).

Completeness note: every valid extension of a valid partial match is
adjacent to *all* of the next step's back-neighbors, in particular to the
anchor — so drawing the pool from the anchor's adjacency list never
misses a match.
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..graph import LabeledGraph
from ..graph.bitset import from_bitset, to_bitset
from .planner import MatchingPlan

#: Candidate-pool size below which the fused bitset kernels fall back to
#: iterating the anchor's CSR row with per-candidate checks.  Big-int
#: mask algebra has a fixed per-``&`` cost proportional to the *vertex
#: universe* width (every mask spans ``num_vertices`` bits), so on a
#: tiny pool — a low-degree anchor on a sparse graph — a handful of
#: direct probes beats building the whole chain.  The estimate is the
#: anchor's degree (== the popcount of its adjacency bitset, read off
#: the CSR offsets for free), so choosing a path costs one comparison.
#: 16 sits comfortably inside the measured crossover band (row wins up
#: to a few dozen candidates on the bundled sparse graphs; masks win
#: from roughly pool ~ universe/100 upward).
SMALL_POOL_DEGREE = 16


def prefers_row_iteration(pool_estimate: int) -> bool:
    """The hybrid kernels' path decision, pinned for tests and docs.

    ``True`` selects the row-iteration path (decode/iterate the anchor's
    CSR row, check candidates one by one), ``False`` the pool-level mask
    path.  ``pool_estimate`` is a cheap popcount-equivalent upper bound
    on the candidate pool: the anchor's degree for a single plan, the
    sum of per-node anchor degrees for a DAG step.  Both paths produce
    identical ``(num_candidates, survivors)`` streams — the choice is
    wall-clock only (regression-pinned by the kernel-equivalence tests).
    """
    return pool_estimate <= SMALL_POOL_DEGREE


def guided_candidates(
    plan: MatchingPlan, graph: LabeledGraph, words: tuple[int, ...]
) -> Sequence[int]:
    """Candidate pool for extending a partial match by one plan step.

    Returns a sorted sequence of graph vertices — the anchor's CSR
    adjacency row, or for a domain-restricted step (guided FSM) the
    decoded single-``&`` intersection of the anchor's neighbor bitset
    with the step whitelist.  Bitsets decode in ascending id order, so
    guided exploration stays deterministic across runs, workers, and
    backends exactly like the exhaustive generator.
    """
    position = len(words)
    if position >= plan.num_steps:
        return ()
    step = plan.steps[position]
    if not step.back_edges:
        # Only the first step of a connected plan has no back-neighbor.
        return step_zero_pool(plan, graph)
    anchor = min(
        (words[earlier] for earlier, _ in step.back_edges),
        key=lambda vertex: (graph.degree(vertex), vertex),
    )
    if step.allowed is None:
        return graph.neighbors(anchor)
    return from_bitset(graph.neighbor_bits(anchor) & step.allowed)


def step_zero_pool(plan: MatchingPlan, graph: LabeledGraph) -> tuple[int, ...]:
    """The candidate pool for a plan's first step, always a sorted tuple.

    A whitelisted first step (guided FSM pushing parent domains down)
    decodes its whitelist bitset; otherwise the pool is the graph's
    eager label index for the step's required label — both ascending,
    so every worker partitions the identical sequence.
    """
    first = plan.steps[0]
    if first.allowed is not None:
        return from_bitset(first.allowed)
    return graph.vertices_with_label(first.vertex_label)


def guided_extension_check(
    plan: MatchingPlan,
    graph: LabeledGraph,
    parent_words: tuple[int, ...],
    word: int,
) -> bool:
    """Whether ``parent_words + (word,)`` is a valid partial match.

    Assumes ``parent_words`` already satisfies the plan's first
    ``len(parent_words)`` steps (the engine only extends surviving
    embeddings, and ODAG extraction applies this check prefix by prefix).
    """
    position = len(parent_words)
    if position >= plan.num_steps:
        return False
    step = plan.steps[position]
    if graph.vertex_label(word) != step.vertex_label:
        return False
    allowed = step.allowed
    if allowed is not None and not (allowed >> word) & 1:
        return False
    if word in parent_words:
        return False
    if step.back_edges:
        word_bits = graph.neighbor_bits(word)
        uniform = graph.uniform_edge_label
        for earlier, edge_label in step.back_edges:
            matched = parent_words[earlier]
            if not (word_bits >> matched) & 1:
                return False
            # On a uniformly-labeled graph adjacency already implies the
            # edge label, so the edge-id lookup is skipped entirely.
            if uniform is not None:
                if edge_label != uniform:
                    return False
            elif graph.edge_label(graph.edge_between(word, matched)) != edge_label:
                return False
        if plan.induced:
            for earlier in step.back_non_edges:
                if (word_bits >> parent_words[earlier]) & 1:
                    return False
    elif plan.induced and step.back_non_edges:
        word_bits = graph.neighbor_bits(word)
        for earlier in step.back_non_edges:
            if (word_bits >> parent_words[earlier]) & 1:
                return False
    for earlier in step.must_exceed:
        if parent_words[earlier] >= word:
            return False
    for earlier in step.must_precede:
        if parent_words[earlier] <= word:
            return False
    return True


def guided_survivors(
    plan: MatchingPlan,
    graph: LabeledGraph,
    words: tuple[int, ...],
    strategy: str | None = None,
) -> tuple[int, tuple[int, ...]]:
    """Candidate pool size + surviving extensions, fused into bitset algebra.

    Equivalent to filtering :func:`guided_candidates` through
    :func:`guided_extension_check` word by word, but the whole per-step
    constraint battery — whitelist, vertex label, back-edge adjacency,
    induced back-non-edges, injectivity, symmetry-breaking order
    restrictions — collapses into one chain of big-int ``&`` ops over the
    graph's precomputed bitsets, decoded to sorted vertex order once at
    the end.  Only per-edge *label* confirmation still walks individual
    candidates, and only on graphs with mixed edge labels
    (:attr:`~repro.graph.LabeledGraph.uniform_edge_label` short-circuits
    the uniform case to pure bit math).

    The kernel is **degree-adaptive**: every mask in the chain spans the
    whole vertex universe, so when the anchor's degree says the pool is
    tiny (:func:`prefers_row_iteration`) the kernel iterates the anchor's
    CSR row and checks the few candidates directly instead — same
    ``(num_candidates, survivors)``, chosen by one comparison.
    ``strategy`` pins a path explicitly (``"rows"`` / ``"masks"``) for
    tests and benchmarks; ``None`` selects adaptively.

    Returns ``(num_candidates, survivors)``: the size of the pool
    :func:`guided_candidates` would have produced (the engine's
    machine-independent exploration metric) and the words whose extension
    passes the plan check, ascending — so emission order, and with it
    result byte-identity across backends, is untouched.
    """
    position = len(words)
    if position >= plan.num_steps:
        return 0, ()
    step = plan.steps[position]
    if not step.back_edges:
        # Step 0: the pool is the whitelist or the label index; only the
        # label constraint can reject (no earlier positions exist yet).
        if step.allowed is None:
            pool = step_zero_pool(plan, graph)
            return len(pool), pool
        return step.allowed.bit_count(), from_bitset(
            step.allowed & graph.label_bits(step.vertex_label)
        )
    # Anchor = lowest-(degree, id) matched back-neighbor, unrolled: a
    # one-back-edge step (most steps on sparse plans) resolves without
    # a genexp/min frame, and the degree doubles as the pool estimate.
    back = step.back_edges
    anchor = words[back[0][0]]
    estimate = graph.degree(anchor)
    for earlier, _ in back[1:]:
        vertex = words[earlier]
        vertex_degree = graph.degree(vertex)
        if vertex_degree < estimate or (
            vertex_degree == estimate and vertex < anchor
        ):
            anchor, estimate = vertex, vertex_degree
    if strategy == "rows" or (
        strategy is None and estimate <= SMALL_POOL_DEGREE
    ):
        return _row_survivors(plan, step, graph, words, anchor)
    bits = graph.neighbor_bits(anchor)
    if step.allowed is not None:
        bits &= step.allowed
    num_candidates = bits.bit_count()
    if not bits:
        return 0, ()
    # Order restrictions first: they truncate the bitset's magnitude, so
    # every later ``&`` runs on fewer machine words.
    if step.must_precede:
        bits &= (1 << min(words[earlier] for earlier in step.must_precede)) - 1
    if step.must_exceed:
        bits &= -1 << (max(words[earlier] for earlier in step.must_exceed) + 1)
    bits &= graph.label_bits(step.vertex_label)
    for earlier, _ in step.back_edges:
        bits &= graph.neighbor_bits(words[earlier])
    if plan.induced:
        for earlier in step.back_non_edges:
            bits &= ~graph.neighbor_bits(words[earlier])
    if bits:
        bits &= ~to_bitset(words)
    if not bits:
        return num_candidates, ()
    uniform = graph.uniform_edge_label
    if uniform is not None:
        for _, edge_label in step.back_edges:
            if edge_label != uniform:
                return num_candidates, ()
        return num_candidates, from_bitset(bits)
    survivors = tuple(
        word
        for word in from_bitset(bits)
        if all(
            graph.edge_label(graph.edge_between(word, words[earlier]))
            == edge_label
            for earlier, edge_label in step.back_edges
        )
    )
    return num_candidates, survivors


def _row_survivors(
    plan: MatchingPlan,
    step,
    graph: LabeledGraph,
    words: tuple[int, ...],
    anchor: int,
) -> tuple[int, tuple[int, ...]]:
    """The hybrid's sparse path: iterate the anchor row, probe per word.

    Semantically identical to the mask chain — the per-step constraint
    battery of :func:`guided_extension_check` with its loop invariants
    hoisted (matched back-neighbors resolved, order restrictions turned
    into two id bounds) — but the cost scales with the anchor's *degree*
    instead of the vertex-universe width.  The pool (and with it
    ``num_candidates``) is exactly the mask path's: the anchor's CSR row,
    filtered by the step whitelist when one is set.
    """
    allowed = step.allowed
    if allowed is None:
        pool = graph.neighbors(anchor)
    else:
        pool = [
            word for word in graph.neighbors(anchor) if (allowed >> word) & 1
        ]
    num_candidates = len(pool)
    if not num_candidates:
        return 0, ()
    uniform = graph.uniform_edge_label
    # Pool membership already proves adjacency to the anchor, so the
    # anchor's own back-edge needs no probe (only — on mixed-label
    # graphs — an edge-label confirm); the remaining back-neighbors
    # need one bit probe each.  Plain loops, no genexp frames: this
    # setup runs once per embedding against pools of a handful of
    # words, so per-call constant cost is the whole game.
    adjacency = []
    edge_labels = [] if uniform is None else None
    for earlier, edge_label in step.back_edges:
        if uniform is not None:
            if edge_label != uniform:
                # Required edge label absent from a uniformly-labeled
                # graph: the mask path zeroes the survivor set too.
                return num_candidates, ()
        else:
            edge_labels.append((words[earlier], edge_label))
        matched = words[earlier]
        if matched != anchor:
            adjacency.append(matched)
    # A single-label graph decides the label constraint wholesale: the
    # pool either all carries the wanted label or none of it does.
    want_label = step.vertex_label
    if graph.num_vertex_labels == 1:
        if not graph.label_bits(want_label):
            return num_candidates, ()
        want_label = None
    non_edges = step.back_non_edges if plan.induced else ()
    # Order restrictions become two bounds on the candidate id, exactly
    # the magnitude masks of the bitset path.
    lower = -1
    for earlier in step.must_exceed:
        matched = words[earlier]
        if matched > lower:
            lower = matched
    upper = graph.num_vertices
    for earlier in step.must_precede:
        matched = words[earlier]
        if matched < upper:
            upper = matched
    neighbor_bits = graph.neighbor_bits
    probe = bool(adjacency or non_edges)
    survivors = []
    for word in pool:
        if not lower < word < upper:
            continue
        if want_label is not None and graph.vertex_label(word) != want_label:
            continue
        if word in words:
            continue
        ok = True
        if probe:
            word_bits = neighbor_bits(word)
            for matched in adjacency:
                if not (word_bits >> matched) & 1:
                    ok = False
                    break
            if ok:
                for earlier in non_edges:
                    if (word_bits >> words[earlier]) & 1:
                        ok = False
                        break
        if ok and edge_labels:
            for matched, edge_label in edge_labels:
                if (
                    graph.edge_label(graph.edge_between(word, matched))
                    != edge_label
                ):
                    ok = False
                    break
        if ok:
            survivors.append(word)
    return num_candidates, tuple(survivors)


def plan_checker(
    plan: MatchingPlan,
) -> Callable[[LabeledGraph, tuple[int, ...], int], bool]:
    """The plan's check with the extension-checker call signature.

    Drop-in replacement for :func:`repro.core.canonical.extension_checker`
    inside the runtime's step tasks.
    """

    def check(
        graph: LabeledGraph, parent_words: tuple[int, ...], word: int
    ) -> bool:
        return guided_extension_check(plan, graph, parent_words, word)

    return check


def match_mapping(plan: MatchingPlan, words: tuple[int, ...]) -> tuple[int, ...]:
    """Translate a full guided embedding into the match mapping.

    Position ``i`` of the result holds the graph vertex matched to
    pattern vertex ``i`` (undoing the plan's matching order).
    """
    if len(words) != plan.num_steps:
        raise ValueError(
            f"expected a full match of {plan.num_steps} words, got {len(words)}"
        )
    mapping = [0] * plan.num_steps
    for position, vertex in enumerate(plan.order):
        mapping[vertex] = words[position]
    return tuple(mapping)
