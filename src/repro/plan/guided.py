"""Guided extension generation — the plan's runtime half.

The exhaustive engine pairs :func:`repro.core.extension.extensions`
("every neighbor of every member") with the Algorithm 2 canonicality
check.  The guided path replaces both:

* :func:`guided_candidates` draws candidates from the adjacency list of a
  single *anchor* — the lowest-degree already-matched back-neighbor of the
  next plan step — so the candidate pool shrinks from the embedding's
  whole frontier to one neighborhood;
* :func:`guided_extension_check` validates a candidate against the next
  plan step (label, back-edges with edge labels, back-non-edges under
  induced semantics, and the symmetry-breaking order restrictions).  The
  restrictions make the check a *uniqueness* guarantee: every occurrence
  of the query is generated through exactly one word sequence, which is
  why the guided path needs no embedding canonicality check.

Both functions are pure and operate on ``(plan, graph, words)`` only, so
the runtime's step tasks can call them from any backend.  The check is
also handed to ODAG extraction as the spurious-path prefix filter: a path
through the overapproximated ODAG is a genuine partial match iff every
prefix extension passes the plan check, mirroring how the exhaustive path
re-applies canonicality plus the user filter (engine section 5.2).

Completeness note: every valid extension of a valid partial match is
adjacent to *all* of the next step's back-neighbors, in particular to the
anchor — so drawing the pool from the anchor's adjacency list never
misses a match.
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..graph import LabeledGraph
from .planner import MatchingPlan


def guided_candidates(
    plan: MatchingPlan, graph: LabeledGraph, words: tuple[int, ...]
) -> Sequence[int]:
    """Candidate pool for extending a partial match by one plan step.

    Returns a sorted sequence of graph vertices (the anchor's adjacency
    list, which :class:`~repro.graph.LabeledGraph` keeps sorted), so
    guided exploration stays deterministic across runs, workers, and
    backends exactly like the exhaustive generator.
    """
    position = len(words)
    if position >= plan.num_steps:
        return ()
    step = plan.steps[position]
    if not step.back_edges:
        # Only the first step of a connected plan has no back-neighbor.
        return step_zero_pool(plan, graph)
    anchor = min(
        (words[earlier] for earlier, _ in step.back_edges),
        key=lambda vertex: (graph.degree(vertex), vertex),
    )
    neighbors = graph.neighbors(anchor)
    if step.allowed is None:
        return neighbors
    # Domain-restricted step (guided FSM): the pool is the anchor
    # neighborhood intersected with the step's whitelist, preserving the
    # sorted neighbor order so determinism is untouched.
    allowed = step.allowed
    return tuple(word for word in neighbors if word in allowed)


def step_zero_pool(plan: MatchingPlan, graph: LabeledGraph) -> Sequence[int]:
    """The candidate pool for a plan's first step.

    A whitelisted first step (guided FSM pushing parent domains down)
    draws from its whitelist; otherwise the pool is the graph's label
    index for the step's required label — both sorted ascending, so
    every worker partitions the identical sequence.  Falls back to all
    vertices only when the index would be the whole graph anyway.
    """
    first = plan.steps[0]
    if first.allowed is not None:
        return tuple(sorted(first.allowed))
    pool = graph.vertices_with_label(first.vertex_label)
    if len(pool) == graph.num_vertices:
        return graph.vertices()
    return pool


def guided_extension_check(
    plan: MatchingPlan,
    graph: LabeledGraph,
    parent_words: tuple[int, ...],
    word: int,
) -> bool:
    """Whether ``parent_words + (word,)`` is a valid partial match.

    Assumes ``parent_words`` already satisfies the plan's first
    ``len(parent_words)`` steps (the engine only extends surviving
    embeddings, and ODAG extraction applies this check prefix by prefix).
    """
    position = len(parent_words)
    if position >= plan.num_steps:
        return False
    step = plan.steps[position]
    if graph.vertex_label(word) != step.vertex_label:
        return False
    if step.allowed is not None and word not in step.allowed:
        return False
    if word in parent_words:
        return False
    for earlier, edge_label in step.back_edges:
        matched = parent_words[earlier]
        if not graph.adjacent(word, matched):
            return False
        if graph.edge_label(graph.edge_id(word, matched)) != edge_label:
            return False
    if plan.induced:
        for earlier in step.back_non_edges:
            if graph.adjacent(word, parent_words[earlier]):
                return False
    for earlier in step.must_exceed:
        if parent_words[earlier] >= word:
            return False
    for earlier in step.must_precede:
        if parent_words[earlier] <= word:
            return False
    return True


def plan_checker(
    plan: MatchingPlan,
) -> Callable[[LabeledGraph, tuple[int, ...], int], bool]:
    """The plan's check with the extension-checker call signature.

    Drop-in replacement for :func:`repro.core.canonical.extension_checker`
    inside the runtime's step tasks.
    """

    def check(
        graph: LabeledGraph, parent_words: tuple[int, ...], word: int
    ) -> bool:
        return guided_extension_check(plan, graph, parent_words, word)

    return check


def match_mapping(plan: MatchingPlan, words: tuple[int, ...]) -> tuple[int, ...]:
    """Translate a full guided embedding into the match mapping.

    Position ``i`` of the result holds the graph vertex matched to
    pattern vertex ``i`` (undoing the plan's matching order).
    """
    if len(words) != plan.num_steps:
        raise ValueError(
            f"expected a full match of {plan.num_steps} words, got {len(words)}"
        )
    mapping = [0] * plan.num_steps
    for position, vertex in enumerate(plan.order):
        mapping[vertex] = words[position]
    return tuple(mapping)
