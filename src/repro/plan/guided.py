"""Guided extension generation — the plan's runtime half.

The exhaustive engine pairs :func:`repro.core.extension.extensions`
("every neighbor of every member") with the Algorithm 2 canonicality
check.  The guided path replaces both:

* :func:`guided_candidates` draws candidates from the adjacency list of a
  single *anchor* — the lowest-degree already-matched back-neighbor of the
  next plan step — so the candidate pool shrinks from the embedding's
  whole frontier to one neighborhood;
* :func:`guided_extension_check` validates a candidate against the next
  plan step (label, back-edges with edge labels, back-non-edges under
  induced semantics, and the symmetry-breaking order restrictions).  The
  restrictions make the check a *uniqueness* guarantee: every occurrence
  of the query is generated through exactly one word sequence, which is
  why the guided path needs no embedding canonicality check;
* :func:`guided_survivors` fuses both into the form the runtime's step
  tasks actually execute: the whole constraint battery collapses into
  one chain of big-int ``&`` ops over the graph's bitsets, decoded to
  sorted vertex order once per embedding.

Both functions are pure and operate on ``(plan, graph, words)`` only, so
the runtime's step tasks can call them from any backend.  The check is
also handed to ODAG extraction as the spurious-path prefix filter: a path
through the overapproximated ODAG is a genuine partial match iff every
prefix extension passes the plan check, mirroring how the exhaustive path
re-applies canonicality plus the user filter (engine section 5.2).

Completeness note: every valid extension of a valid partial match is
adjacent to *all* of the next step's back-neighbors, in particular to the
anchor — so drawing the pool from the anchor's adjacency list never
misses a match.
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..graph import LabeledGraph
from ..graph.bitset import from_bitset, to_bitset
from .planner import MatchingPlan


def guided_candidates(
    plan: MatchingPlan, graph: LabeledGraph, words: tuple[int, ...]
) -> Sequence[int]:
    """Candidate pool for extending a partial match by one plan step.

    Returns a sorted sequence of graph vertices — the anchor's CSR
    adjacency row, or for a domain-restricted step (guided FSM) the
    decoded single-``&`` intersection of the anchor's neighbor bitset
    with the step whitelist.  Bitsets decode in ascending id order, so
    guided exploration stays deterministic across runs, workers, and
    backends exactly like the exhaustive generator.
    """
    position = len(words)
    if position >= plan.num_steps:
        return ()
    step = plan.steps[position]
    if not step.back_edges:
        # Only the first step of a connected plan has no back-neighbor.
        return step_zero_pool(plan, graph)
    anchor = min(
        (words[earlier] for earlier, _ in step.back_edges),
        key=lambda vertex: (graph.degree(vertex), vertex),
    )
    if step.allowed is None:
        return graph.neighbors(anchor)
    return from_bitset(graph.neighbor_bits(anchor) & step.allowed)


def step_zero_pool(plan: MatchingPlan, graph: LabeledGraph) -> tuple[int, ...]:
    """The candidate pool for a plan's first step, always a sorted tuple.

    A whitelisted first step (guided FSM pushing parent domains down)
    decodes its whitelist bitset; otherwise the pool is the graph's
    eager label index for the step's required label — both ascending,
    so every worker partitions the identical sequence.
    """
    first = plan.steps[0]
    if first.allowed is not None:
        return from_bitset(first.allowed)
    return graph.vertices_with_label(first.vertex_label)


def guided_extension_check(
    plan: MatchingPlan,
    graph: LabeledGraph,
    parent_words: tuple[int, ...],
    word: int,
) -> bool:
    """Whether ``parent_words + (word,)`` is a valid partial match.

    Assumes ``parent_words`` already satisfies the plan's first
    ``len(parent_words)`` steps (the engine only extends surviving
    embeddings, and ODAG extraction applies this check prefix by prefix).
    """
    position = len(parent_words)
    if position >= plan.num_steps:
        return False
    step = plan.steps[position]
    if graph.vertex_label(word) != step.vertex_label:
        return False
    allowed = step.allowed
    if allowed is not None and not (allowed >> word) & 1:
        return False
    if word in parent_words:
        return False
    if step.back_edges:
        word_bits = graph.neighbor_bits(word)
        uniform = graph.uniform_edge_label
        for earlier, edge_label in step.back_edges:
            matched = parent_words[earlier]
            if not (word_bits >> matched) & 1:
                return False
            # On a uniformly-labeled graph adjacency already implies the
            # edge label, so the edge-id lookup is skipped entirely.
            if uniform is not None:
                if edge_label != uniform:
                    return False
            elif graph.edge_label(graph.edge_between(word, matched)) != edge_label:
                return False
        if plan.induced:
            for earlier in step.back_non_edges:
                if (word_bits >> parent_words[earlier]) & 1:
                    return False
    elif plan.induced and step.back_non_edges:
        word_bits = graph.neighbor_bits(word)
        for earlier in step.back_non_edges:
            if (word_bits >> parent_words[earlier]) & 1:
                return False
    for earlier in step.must_exceed:
        if parent_words[earlier] >= word:
            return False
    for earlier in step.must_precede:
        if parent_words[earlier] <= word:
            return False
    return True


def guided_survivors(
    plan: MatchingPlan, graph: LabeledGraph, words: tuple[int, ...]
) -> tuple[int, tuple[int, ...]]:
    """Candidate pool size + surviving extensions, fused into bitset algebra.

    Equivalent to filtering :func:`guided_candidates` through
    :func:`guided_extension_check` word by word, but the whole per-step
    constraint battery — whitelist, vertex label, back-edge adjacency,
    induced back-non-edges, injectivity, symmetry-breaking order
    restrictions — collapses into one chain of big-int ``&`` ops over the
    graph's precomputed bitsets, decoded to sorted vertex order once at
    the end.  Only per-edge *label* confirmation still walks individual
    candidates, and only on graphs with mixed edge labels
    (:attr:`~repro.graph.LabeledGraph.uniform_edge_label` short-circuits
    the uniform case to pure bit math).

    Returns ``(num_candidates, survivors)``: the size of the pool
    :func:`guided_candidates` would have produced (the engine's
    machine-independent exploration metric) and the words whose extension
    passes the plan check, ascending — so emission order, and with it
    result byte-identity across backends, is untouched.
    """
    position = len(words)
    if position >= plan.num_steps:
        return 0, ()
    step = plan.steps[position]
    if not step.back_edges:
        # Step 0: the pool is the whitelist or the label index; only the
        # label constraint can reject (no earlier positions exist yet).
        if step.allowed is None:
            pool = step_zero_pool(plan, graph)
            return len(pool), pool
        return step.allowed.bit_count(), from_bitset(
            step.allowed & graph.label_bits(step.vertex_label)
        )
    anchor = min(
        (words[earlier] for earlier, _ in step.back_edges),
        key=lambda vertex: (graph.degree(vertex), vertex),
    )
    bits = graph.neighbor_bits(anchor)
    if step.allowed is not None:
        bits &= step.allowed
    num_candidates = bits.bit_count()
    if not bits:
        return 0, ()
    # Order restrictions first: they truncate the bitset's magnitude, so
    # every later ``&`` runs on fewer machine words.
    if step.must_precede:
        bits &= (1 << min(words[earlier] for earlier in step.must_precede)) - 1
    if step.must_exceed:
        bits &= -1 << (max(words[earlier] for earlier in step.must_exceed) + 1)
    bits &= graph.label_bits(step.vertex_label)
    for earlier, _ in step.back_edges:
        bits &= graph.neighbor_bits(words[earlier])
    if plan.induced:
        for earlier in step.back_non_edges:
            bits &= ~graph.neighbor_bits(words[earlier])
    if bits:
        bits &= ~to_bitset(words)
    if not bits:
        return num_candidates, ()
    uniform = graph.uniform_edge_label
    if uniform is not None:
        for _, edge_label in step.back_edges:
            if edge_label != uniform:
                return num_candidates, ()
        return num_candidates, from_bitset(bits)
    survivors = tuple(
        word
        for word in from_bitset(bits)
        if all(
            graph.edge_label(graph.edge_between(word, words[earlier]))
            == edge_label
            for earlier, edge_label in step.back_edges
        )
    )
    return num_candidates, survivors


def plan_checker(
    plan: MatchingPlan,
) -> Callable[[LabeledGraph, tuple[int, ...], int], bool]:
    """The plan's check with the extension-checker call signature.

    Drop-in replacement for :func:`repro.core.canonical.extension_checker`
    inside the runtime's step tasks.
    """

    def check(
        graph: LabeledGraph, parent_words: tuple[int, ...], word: int
    ) -> bool:
        return guided_extension_check(plan, graph, parent_words, word)

    return check


def match_mapping(plan: MatchingPlan, words: tuple[int, ...]) -> tuple[int, ...]:
    """Translate a full guided embedding into the match mapping.

    Position ``i`` of the result holds the graph vertex matched to
    pattern vertex ``i`` (undoing the plan's matching order).
    """
    if len(words) != plan.num_steps:
        raise ValueError(
            f"expected a full match of {plan.num_steps} words, got {len(words)}"
        )
    mapping = [0] * plan.num_steps
    for position, vertex in enumerate(plan.order):
        mapping[vertex] = words[position]
    return tuple(mapping)
