"""Multi-query plan DAGs: one shared-prefix exploration for a pattern batch.

A single :class:`~repro.plan.planner.MatchingPlan` answers one pattern per
engine run, so multi-pattern workloads — the motif distribution, guided
FSM's per-level candidate sets — re-enumerate the same partial matches
once per pattern.  A :class:`PlanDAG` compiles a *batch* of patterns into
one structure instead:

* **prefix-affine orders** — each member pattern is compiled through
  :func:`repro.plan.planner.compile_plan` with a matching order chosen
  greedily against a shared trie (:func:`build_plan_dag`): at every step
  the order search prefers the pattern vertex whose structural step
  signature (required vertex label + back-edges with edge labels) matches
  an existing trie child, so sibling patterns agree on their common
  subpattern's matching order and their plans share trie nodes;
* **shared trie nodes** — a :class:`DagNode` carries only the structural
  constraints every pattern routed through it agrees on; per-pattern
  symmetry restrictions, induced back-non-edges, and per-pattern domain
  whitelists stay on the member plans, where they are sound per pattern
  by construction (they are exactly the solo plan's);
* **set-of-active-nodes execution** — the runtime advances each embedding
  against the whole batch at once: :func:`dag_survivors` tracks which
  member patterns still accept the word sequence, candidate pools are
  generated once per distinct trie node of the surviving patterns and
  deduplicated (:func:`dag_candidates`), a candidate is kept if *any*
  survivor accepts it (:func:`dag_extension_check`), and a full-size
  embedding is emitted once per accepting leaf
  (:func:`accepting_patterns`).

Correctness is independent of how much sharing the order search finds:
every member pattern owns a complete plan, and an embedding advances a
pattern only if it passes that plan's own per-step check — so the DAG run
explores exactly the union of the per-pattern guided runs, with shared
prefixes generated (and stored) once instead of once per pattern.

The DAG is immutable, hashable, picklable plain data, accepted everywhere
a single plan is: ``ArabesqueConfig.plan``, the runtime's
:class:`~repro.runtime.tasks.StepContext`, and the engine's validation.
"""

from __future__ import annotations

import dataclasses
import weakref
from dataclasses import dataclass
from typing import Sequence

from ..core.pattern import Pattern
from ..graph import LabeledGraph
from ..graph.bitset import from_bitset, to_bitset
from .guided import guided_extension_check, prefers_row_iteration
from .planner import MatchingPlan, PlanError, compile_plan, restrict_plan


@dataclass(frozen=True)
class DagNode:
    """One shared trie position: structural constraints only.

    Two member plans share a node exactly when their whole step prefixes
    agree structurally (same label + back-edge signature at every earlier
    position).  Per-pattern constraints — symmetry restrictions, induced
    back-non-edges, domain whitelists — live on the member plans.
    """

    node_id: int
    #: Index of this step in the matching order (== prefix length).
    position: int
    #: Required vertex label (shared — part of the trie signature).
    vertex_label: int
    #: ``(earlier position, required edge label)`` back-edges (shared).
    back_edges: tuple[tuple[int, int], ...]
    #: Union of the member whitelists routed through this node, as a
    #: big-int bitset over vertex ids (``None`` when any member is
    #: unrestricted here).  Pool pruning only — each member plan still
    #: enforces its own exact whitelist, so using the union never loses
    #: a match and never admits one.  Bitset form keeps the union a
    #: single ``|`` and the pool intersection a single ``&``.
    allowed: int | None = None


@dataclass(frozen=True)
class PlanDAG:
    """A compiled pattern batch: member plans + their shared-prefix trie.

    ``plans[p]`` is pattern ``p``'s full :class:`MatchingPlan` (compiled
    with the prefix-affine order); ``paths[p][d]`` is the trie node plan
    ``p`` occupies at step ``d``.  All member plans share one semantics
    flag (``induced``), mirroring the single-plan contract.
    """

    induced: bool
    plans: tuple[MatchingPlan, ...]
    nodes: tuple[DagNode, ...]
    paths: tuple[tuple[int, ...], ...]

    @property
    def patterns(self) -> tuple[Pattern, ...]:
        """The batch, in member order."""
        return tuple(plan.pattern for plan in self.plans)

    @property
    def num_patterns(self) -> int:
        return len(self.plans)

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def total_plan_steps(self) -> int:
        """Steps the batch would occupy as independent plans."""
        return sum(plan.num_steps for plan in self.plans)

    @property
    def shared_steps(self) -> int:
        """Plan steps the trie deduplicated away (the sharing win)."""
        return self.total_plan_steps - self.num_nodes

    @property
    def max_depth(self) -> int:
        return max(plan.num_steps for plan in self.plans)

    def describe(self) -> str:
        """One-line human-readable DAG summary (CLI / benchmarks)."""
        whitelisted = sum(
            1
            for plan in self.plans
            for step in plan.steps
            if step.allowed is not None
        )
        return (
            f"patterns={self.num_patterns} nodes={self.num_nodes}"
            f" (plan steps={self.total_plan_steps},"
            f" {self.shared_steps} shared)"
            f" depth<={self.max_depth}"
            f" whitelisted-steps={whitelisted}"
            f" semantics={'induced' if self.induced else 'monomorphic'}"
        )


# ----------------------------------------------------------------------
# Compilation: prefix-affine order search over a shared trie
# ----------------------------------------------------------------------
def _step_signature(
    pattern: Pattern,
    adjacency: dict[int, dict[int, int]],
    position_of: dict[int, int],
    vertex: int,
) -> tuple[int, tuple[tuple[int, int], ...]]:
    """Structural signature of placing ``vertex`` after the placed prefix.

    Only the shared constraints enter the signature: the vertex label and
    the (position, edge label) back-edges.  Induced back-non-edges and
    symmetry restrictions are deliberately excluded — they differ between
    patterns that can still share candidate pools, and each member plan
    enforces its own.
    """
    back_edges = tuple(
        sorted(
            (position_of[other], label)
            for other, label in adjacency[vertex].items()
            if other in position_of
        )
    )
    return (pattern.vertex_labels[vertex], back_edges)


def _pattern_adjacency(pattern: Pattern) -> dict[int, dict[int, int]]:
    """``vertex -> {neighbor: edge label}`` of a pattern (order search)."""
    adjacency: dict[int, dict[int, int]] = {
        v: {} for v in range(pattern.num_vertices)
    }
    for u, v, label in pattern.edges:
        adjacency[u][v] = label
        adjacency[v][u] = label
    return adjacency


def _signature_chain(
    pattern: Pattern,
    adjacency: dict[int, dict[int, int]],
    order: Sequence[int],
) -> tuple[tuple, ...]:
    """The trie-signature sequence an order walks, root to leaf."""
    position_of: dict[int, int] = {}
    chain = []
    for vertex in order:
        chain.append(_step_signature(pattern, adjacency, position_of, vertex))
        position_of[vertex] = len(position_of)
    return tuple(chain)


def _harmonized_orders(
    batch: tuple[Pattern, ...], catalog
) -> list[tuple[int, ...]]:
    """Catalog-aware joint order selection: restriction harmonization.

    The greedy prefix-affine search only aligns a pattern with trie
    children its *heuristic* ranking happens to walk past — order-variant
    prefixes of the same subpattern (typical in labeled batches, where
    label-distinct signatures defeat the heuristic ranking) end up on
    separate nodes doing duplicate work.  This search prices orders
    jointly instead, in two passes:

    * **pass 1** — patterns are inserted in batch order; each one picks,
      among its cost-search candidate orders
      (:func:`repro.plan.cost.candidate_orders`), the order minimizing
      the estimated cost of its **novel** trie nodes only (nodes already
      in the trie are shared and price at zero), tying back to the
      greedy affine baseline unless an alternative is strictly cheaper;
    * **pass 2** — with the full pass-1 trie known, every pattern
      re-chooses against it (early members now see the prefixes later
      members created), and the final trie is rebuilt from the final
      orders.

    Deterministic throughout: candidate enumeration, scoring tuples, and
    tie-breaks are all total orders over plain data.
    """
    from .cost import candidate_orders, estimate_order

    adjacencies = [_pattern_adjacency(pattern) for pattern in batch]
    degrees = [
        {v: len(adjacency[v]) for v in adjacency} for adjacency in adjacencies
    ]
    #: Per pattern: [(order, signature chain, cost estimate)].
    priced: list[list[tuple[tuple[int, ...], tuple, object]]] = []
    estimates: list[dict[tuple[int, ...], object]] = []
    for index, pattern in enumerate(batch):
        rows = []
        memo: dict[tuple[int, ...], object] = {}
        for order in candidate_orders(pattern, catalog):
            estimate = estimate_order(pattern, order, catalog)
            memo[order] = estimate
            rows.append(
                (order, _signature_chain(pattern, adjacencies[index], order), estimate)
            )
        priced.append(rows)
        estimates.append(memo)

    def estimate_for(index: int, order: tuple[int, ...]):
        memo = estimates[index]
        estimate = memo.get(order)
        if estimate is None:
            estimate = estimate_order(batch[index], order, catalog)
            memo[order] = estimate
        return estimate

    def score(
        chain: tuple[tuple, ...],
        estimate,
        root_children: dict,
        node_children: list[dict],
    ) -> tuple[float, int, float]:
        """(novel-node cost, novel-node count, total cost) of inserting
        ``chain`` into the given trie — shared prefixes price at zero."""
        parent: int | None = None
        diverged = False
        novel_cost = 0.0
        novel = 0
        for depth, signature in enumerate(chain):
            if not diverged:
                table = root_children if parent is None else node_children[parent]
                child = table.get(signature)
                if child is not None:
                    parent = child
                    continue
                diverged = True
            novel_cost += estimate.steps[depth].candidates
            novel += 1
        return (novel_cost, novel, estimate.total_candidates)

    def insert(
        chain: tuple[tuple, ...],
        root_children: dict,
        node_children: list[dict],
    ) -> None:
        parent: int | None = None
        for signature in chain:
            table = root_children if parent is None else node_children[parent]
            child = table.get(signature)
            if child is None:
                child = len(node_children)
                node_children.append({})
                table[signature] = child
            parent = child

    def affine_greedy(
        index: int, root_children: dict, node_children: list[dict]
    ) -> tuple[int, ...]:
        """The catalog-free greedy order against the current trie (the
        baseline an alternative must strictly beat)."""
        pattern = batch[index]
        adjacency = adjacencies[index]
        degree = degrees[index]
        position_of: dict[int, int] = {}
        order: list[int] = []
        parent: int | None = None
        diverged = False
        while len(order) < pattern.num_vertices:
            if order:
                frontier = [
                    v
                    for v in range(pattern.num_vertices)
                    if v not in position_of
                    and position_of.keys() & adjacency[v].keys()
                ]
            else:
                frontier = list(range(pattern.num_vertices))
            ranked = sorted(
                frontier,
                key=lambda v: (
                    len(position_of.keys() & adjacency[v].keys()),
                    degree[v],
                    -v,
                ),
                reverse=True,
            )
            chosen = ranked[0]
            if not diverged:
                table = root_children if parent is None else node_children[parent]
                match = next(
                    (
                        v
                        for v in ranked
                        if _step_signature(pattern, adjacency, position_of, v)
                        in table
                    ),
                    None,
                )
                if match is None:
                    diverged = True
                else:
                    chosen = match
                    parent = table[
                        _step_signature(pattern, adjacency, position_of, chosen)
                    ]
            position_of[chosen] = len(order)
            order.append(chosen)
        return tuple(order)

    def choose(
        index: int,
        root_children: dict,
        node_children: list[dict],
        baseline_order: tuple[int, ...],
    ) -> tuple[int, ...]:
        pattern = batch[index]
        baseline_score = score(
            _signature_chain(pattern, adjacencies[index], baseline_order),
            estimate_for(index, baseline_order),
            root_children,
            node_children,
        )
        best: tuple[tuple[float, int, float], tuple[int, ...]] | None = None
        for order, chain, estimate in priced[index]:
            if order == baseline_order:
                continue
            key = (score(chain, estimate, root_children, node_children), order)
            if best is None or key < best:
                best = key
        if best is not None and best[0] < baseline_score:
            return best[1]
        return baseline_order

    root1: dict = {}
    children1: list[dict] = []
    pass1: list[tuple[int, ...]] = []
    for index, pattern in enumerate(batch):
        baseline = affine_greedy(index, root1, children1)
        order = choose(index, root1, children1, baseline)
        pass1.append(order)
        insert(_signature_chain(pattern, adjacencies[index], order), root1, children1)
    return [
        choose(index, root1, children1, pass1[index])
        for index in range(len(batch))
    ]


def build_plan_dag(
    patterns: Sequence[Pattern], induced: bool = True, *, catalog=None
) -> PlanDAG:
    """Compile a batch of patterns into one prefix-sharing :class:`PlanDAG`.

    Patterns are inserted into the trie in batch order; each one's
    matching order is chosen greedily — at every step, prefer a frontier
    vertex whose structural step signature (required vertex label +
    back-edges with edge labels) matches an existing child of the
    current trie node (so shared subpatterns align), falling back to the
    single-plan connectivity heuristic (most placed neighbors, then
    degree, then smaller id) when nothing matches.

    ``catalog`` (a :class:`~repro.plan.stats.GraphCatalog`) upgrades the
    order search to the jointly-costed **harmonized** mode
    (:func:`_harmonized_orders`) on graphs with more than one vertex
    label: shared prefixes are priced at zero, so order-variant prefixes
    of the same subpattern collapse onto one :class:`DagNode` whenever
    the cost model says the alignment is worth it.  On single-label
    graphs the statistics cannot separate label pools and the greedy
    alignment is kept — byte-identical to ``catalog=None``.  Order
    choice never affects results, only candidate counts.

    Raises :class:`PlanError` for an empty batch, duplicate patterns, or
    any empty/disconnected member.
    """
    batch = tuple(patterns)
    if not batch:
        raise PlanError("pattern batch must not be empty")
    if len(set(batch)) != len(batch):
        raise PlanError("pattern batch contains duplicate patterns")
    for pattern in batch:
        if pattern.num_vertices == 0:
            raise PlanError("query pattern must not be empty")
        if not pattern.is_connected():
            raise PlanError("query pattern must be connected")

    harmonized: list[tuple[int, ...]] | None = None
    if catalog is not None and len(catalog.label_frequency) > 1:
        harmonized = _harmonized_orders(batch, catalog)

    #: Child tables: root_children for position 0, node_children[i] for
    #: the children of node i.  node_info[i] = (position, signature).
    root_children: dict[tuple, int] = {}
    node_children: list[dict[tuple, int]] = []
    node_info: list[tuple[int, tuple]] = []

    def child_of(parent: int | None, signature: tuple, position: int) -> int:
        table = root_children if parent is None else node_children[parent]
        node_id = table.get(signature)
        if node_id is None:
            node_id = len(node_info)
            node_info.append((position, signature))
            node_children.append({})
            table[signature] = node_id
        return node_id

    orders: list[tuple[int, ...]] = []
    paths: list[tuple[int, ...]] = []
    for member, pattern in enumerate(batch):
        adjacency = _pattern_adjacency(pattern)
        degree = {v: len(adjacency[v]) for v in range(pattern.num_vertices)}
        position_of: dict[int, int] = {}
        order: list[int] = []
        path: list[int] = []
        parent: int | None = None
        while len(order) < pattern.num_vertices:
            if harmonized is not None:
                chosen = harmonized[member][len(order)]
            else:
                if order:
                    frontier = [
                        v
                        for v in range(pattern.num_vertices)
                        if v not in position_of
                        and position_of.keys() & adjacency[v].keys()
                    ]
                else:
                    frontier = list(range(pattern.num_vertices))
                ranked = sorted(
                    frontier,
                    key=lambda v: (
                        len(position_of.keys() & adjacency[v].keys()),
                        degree[v],
                        -v,
                    ),
                    reverse=True,
                )
                table = root_children if parent is None else node_children[parent]
                chosen = next(
                    (
                        v
                        for v in ranked
                        if _step_signature(pattern, adjacency, position_of, v)
                        in table
                    ),
                    ranked[0],
                )
            signature = _step_signature(pattern, adjacency, position_of, chosen)
            parent = child_of(parent, signature, len(order))
            path.append(parent)
            position_of[chosen] = len(order)
            order.append(chosen)
        orders.append(tuple(order))
        paths.append(tuple(path))

    plans = tuple(
        compile_plan(pattern, induced=induced, order=order)
        for pattern, order in zip(batch, orders)
    )
    nodes = tuple(
        DagNode(
            node_id=node_id,
            position=position,
            vertex_label=signature[0],
            back_edges=signature[1],
        )
        for node_id, (position, signature) in enumerate(node_info)
    )
    return _with_node_whitelists(
        PlanDAG(induced=induced, plans=plans, nodes=nodes, paths=tuple(paths))
    )


_UNSET = object()


def _with_node_whitelists(dag: PlanDAG) -> PlanDAG:
    """Recompute each node's pool whitelist as the member-whitelist union.

    ``None`` (unrestricted) wins as soon as any member routed through the
    node has no whitelist at that step — the pool must cover every
    member's candidates.
    """
    unions: list = [_UNSET] * len(dag.nodes)
    for plan, path in zip(dag.plans, dag.paths):
        for depth, node_id in enumerate(path):
            allowed = plan.steps[depth].allowed
            current = unions[node_id]
            if current is _UNSET:
                unions[node_id] = allowed
            elif current is None or allowed is None:
                unions[node_id] = None
            else:
                unions[node_id] = current | allowed
    nodes = tuple(
        dataclasses.replace(
            node, allowed=None if unions[i] is _UNSET else unions[i]
        )
        for i, node in enumerate(dag.nodes)
    )
    return dataclasses.replace(dag, nodes=nodes)


def restrict_dag(
    dag: PlanDAG,
    allowed_by_pattern: dict[Pattern, dict],
) -> PlanDAG:
    """A copy of ``dag`` with per-pattern vertex whitelists overlaid.

    ``allowed_by_pattern`` maps member patterns to the per-pattern-vertex
    whitelists :func:`repro.plan.planner.restrict_plan` takes (iterables
    of vertex ids or pre-packed bitset ints); members absent from the
    dict keep whatever whitelists they already carry.  Like
    ``restrict_plan``, overlays **compose**: restricting an
    already-restricted DAG intersects the new whitelists with the
    existing ones (never a silent overwrite), and re-applying the same
    overlay is idempotent.  The trie structure, matching orders, and
    symmetry restrictions are reused unchanged (no recompilation — the
    point of caching DAGs by pattern batch); node pool whitelists are
    recomputed as the member unions.  Soundness is the caller's
    contract, exactly as for ``restrict_plan``.
    """
    plans = tuple(
        restrict_plan(plan, allowed_by_pattern.get(plan.pattern, {}))
        for plan in dag.plans
    )
    return _with_node_whitelists(dataclasses.replace(dag, plans=plans))


# ----------------------------------------------------------------------
# Execution: advance the set of active nodes / surviving patterns
# ----------------------------------------------------------------------
def dag_survivors(
    dag: PlanDAG, graph: LabeledGraph, words: tuple[int, ...]
) -> list[int]:
    """Member patterns (by index) whose plan accepts ``words`` as a prefix.

    A pattern survives depth ``d`` iff its plan has a step there and that
    step's full check (label, back-edges, induced non-edges, symmetry
    restrictions, whitelist) accepts ``words[d]`` — i.e. exactly the
    per-pattern guided acceptance, applied batch-wide.  Patterns whose
    plan length equals ``len(words)`` and survived every step are full
    matches (see :func:`accepting_patterns`).
    """
    survivors = list(range(len(dag.plans)))
    for depth in range(len(words)):
        if not survivors:
            break
        prefix = words[:depth]
        word = words[depth]
        survivors = [
            p
            for p in survivors
            if dag.plans[p].num_steps > depth
            and guided_extension_check(dag.plans[p], graph, prefix, word)
        ]
    return survivors


def accepting_patterns(
    dag: PlanDAG, graph: LabeledGraph, words: tuple[int, ...]
) -> tuple[int, ...]:
    """Member indices whose plan accepts ``words`` as a *full* match.

    An embedding is emitted once per accepting leaf: each index here is
    one leaf whose whole root-to-leaf constraint chain ``words``
    satisfies.  Under monomorphic semantics several leaves can accept the
    same words (extra graph edges belong to a denser sibling's edge set
    too); under induced semantics back-non-edges make the leaf unique.
    """
    size = len(words)
    return tuple(
        p
        for p in dag_survivors(dag, graph, words)
        if dag.plans[p].num_steps == size
    )


def dag_extendable(
    dag: PlanDAG, graph: LabeledGraph, words: tuple[int, ...]
) -> bool:
    """Whether any surviving member still has plan steps beyond ``words``.

    The DAG computations' termination filter: embeddings that are a leaf
    for every surviving pattern must not be stored for the next step (they
    would only generate empty candidate pools).
    """
    size = len(words)
    return any(
        dag.plans[p].num_steps > size
        for p in dag_survivors(dag, graph, words)
    )


def dag_step_zero_pool(
    dag: PlanDAG, graph: LabeledGraph
) -> tuple[int, ...]:
    """The DAG's step-0 candidate pool: the union of its root pools.

    One bitset per distinct root node (whitelist when every member
    routed through it is whitelisted, else the node label's index —
    mirroring :func:`repro.plan.guided.step_zero_pool`), OR-ed together
    and decoded ascending, so every worker partitions the identical
    sorted tuple and shared roots are scanned once instead of once per
    pattern.
    """
    roots = sorted({path[0] for path in dag.paths})
    if len(roots) == 1:
        node = dag.nodes[roots[0]]
        if node.allowed is not None:
            return from_bitset(node.allowed)
        return graph.vertices_with_label(node.vertex_label)
    merged = 0
    for node_id in roots:
        node = dag.nodes[node_id]
        merged |= (
            node.allowed
            if node.allowed is not None
            else graph.label_bits(node.vertex_label)
        )
    return from_bitset(merged)


def _pool_for_nodes(
    dag: PlanDAG,
    graph: LabeledGraph,
    words: tuple[int, ...],
    live_nodes: Sequence[int],
) -> Sequence[int]:
    """Merged sorted-unique candidate pool of the given trie nodes.

    Each node's pool is **closure-complete**: the intersection of *all*
    its shared back-edge neighbor rows (then the union whitelist) — the
    node honors every structural back-edge its members agree on, so a
    shared node's pool admits only vertices adjacent to the whole
    anchored prefix, not just the cheapest single anchor.  The
    intersection is amortized across every member routed through the
    node, which is exactly the sharing win a solo plan (one member per
    "node") does not get — the solo kernel keeps its single min-degree
    anchor row (:func:`repro.plan.guided.guided_candidates`).  Merging
    is one ``&`` chain + one ``|`` per node and one ascending decode; a
    single one-back-edge unrestricted node returns the anchor's CSR row
    directly.
    """
    if not live_nodes:
        return ()
    merged = 0
    single = len(live_nodes) == 1
    for node_id in live_nodes:
        node = dag.nodes[node_id]
        back = node.back_edges
        if not back:
            # A node without back-neighbors is a root; connected-prefix
            # order validation keeps roots out of positions >= 1, so a
            # violated invariant must fail loudly rather than quietly
            # degrade into an inflated pool.
            assert not words, "back-edge-less DAG node reached mid-plan"
            merged |= (
                node.allowed
                if node.allowed is not None
                else graph.label_bits(node.vertex_label)
            )
            continue
        if single and len(back) == 1 and node.allowed is None:
            return graph.neighbors(words[back[0][0]])
        pool = graph.neighbor_bits(words[back[0][0]])
        for earlier, _ in back[1:]:
            pool &= graph.neighbor_bits(words[earlier])
        if node.allowed is not None:
            pool &= node.allowed
        merged |= pool
    return from_bitset(merged)


def dag_candidates(
    dag: PlanDAG, graph: LabeledGraph, words: tuple[int, ...]
) -> Sequence[int]:
    """Candidate pool for extending ``words`` by one step, batch-wide.

    One closure-complete pool per distinct trie node the surviving
    patterns occupy next (the intersection of the node's back-edge
    neighbor rows, pre-filtered by its union whitelist), merged
    sorted-unique — the sharing win: a candidate proposed by several
    sibling patterns is generated (and counted) once, and the per-node
    intersection cost is amortized across every member routed through
    the node.  Completeness per pattern is the single-plan argument
    (every member back-edge is a shared node back-edge), applied per
    node.
    """
    position = len(words)
    live_nodes = sorted(
        {
            dag.paths[p][position]
            for p in dag_survivors(dag, graph, words)
            if dag.plans[p].num_steps > position
        }
    )
    return _pool_for_nodes(dag, graph, words, live_nodes)


def dag_extension_check(
    dag: PlanDAG,
    graph: LabeledGraph,
    parent_words: tuple[int, ...],
    word: int,
) -> bool:
    """Whether ``parent_words + (word,)`` advances at least one pattern.

    The DAG counterpart of the single plan's per-step check: a candidate
    is kept (and the extended embedding stored once) iff some member
    surviving the parent prefix accepts it at the next step.  Like the
    single-plan check it is anti-monotone — survivors only shrink — so
    ODAG extraction can apply it prefix by prefix.
    """
    position = len(parent_words)
    for p in dag_survivors(dag, graph, parent_words):
        plan = dag.plans[p]
        if plan.num_steps > position and guided_extension_check(
            plan, graph, parent_words, word
        ):
            return True
    return False


class DagMaskBundle:
    """Per-``(PlanDAG, graph)`` structural masks, one slot per trie node.

    Everything in a node's fused step check that does **not** depend on
    the embedding being extended is precomputed here, so the hot kernel
    (:meth:`DagStepper.step`) assembles each per-node survivor chain from
    ready-made big ints:

    * ``label_masks[node_id]`` — the graph's label-index bitset for the
      node's required vertex label (the chain's label clause);
    * ``edge_label_ok[node_id]`` — the back-edge *label* verdict, settled
      per node instead of per candidate: ``True`` when adjacency already
      implies the labels (uniformly-labeled graph, labels match — or no
      back-edges at all), ``False`` when a required label cannot exist on
      a uniformly-labeled graph (the node's survivor set is always
      empty), ``None`` on mixed-label graphs (confirm per decoded
      survivor, exactly like the single-plan kernel);
    * ``root_pools[node_id]`` — for back-edge-less roots only: the step-0
      pool bitset (union whitelist when set, else the label index).

    Bundles are plain derived data — rebuilding one from scratch always
    reproduces it (the ``restrict_dag`` property tests pin this), so the
    memo (:func:`mask_bundle`) is a pure cache: sessions and the engine
    prewarm it per compiled DAG, worker tasks read it, and a fork-based
    process backend inherits the prewarmed masks through copy-on-write
    instead of rebuilding them per process.
    """

    __slots__ = ("dag", "graph", "label_masks", "edge_label_ok", "root_pools")

    def __init__(self, dag: PlanDAG, graph: LabeledGraph) -> None:
        self.dag = dag
        self.graph = graph
        uniform = graph.uniform_edge_label
        label_masks = []
        edge_label_ok: list[bool | None] = []
        root_pools: list[int | None] = []
        for node in dag.nodes:
            label_masks.append(graph.label_bits(node.vertex_label))
            if not node.back_edges:
                verdict: bool | None = True
            elif uniform is None:
                verdict = None
            else:
                verdict = all(
                    label == uniform for _, label in node.back_edges
                )
            edge_label_ok.append(verdict)
            if node.back_edges:
                root_pools.append(None)
            else:
                root_pools.append(
                    node.allowed
                    if node.allowed is not None
                    else graph.label_bits(node.vertex_label)
                )
        self.label_masks = tuple(label_masks)
        self.edge_label_ok = tuple(edge_label_ok)
        self.root_pools = tuple(root_pools)


#: One bundle per live DAG (weak — dropping the DAG drops its masks).
#: Keyed by the DAG; the bundle pins which graph it was built for, so a
#: different graph (never the case inside one run) rebuilds.
#: Identity-keyed weak memo: ``id(dag) -> (weakref-to-dag, bundle)``.
#: Keyed by object identity, NOT value equality — PlanDAG is a frozen
#: dataclass, so a ``WeakKeyDictionary`` would fold value-equal DAGs
#: (the same batch compiled twice) into one slot, and the weakref
#: callback of whichever copy dies first would evict the survivor's
#: warm entry.  The weakref finalizer removes the entry when its own
#: DAG is collected, never a look-alike's.
_MASK_BUNDLES: dict[int, tuple["weakref.ref[PlanDAG]", DagMaskBundle]] = {}


def mask_bundle(dag: PlanDAG, graph: LabeledGraph) -> DagMaskBundle:
    """The memoized :class:`DagMaskBundle` for ``(dag, graph)``.

    Cheap to call anywhere a DAG meets its graph: the session facade and
    the engine prewarm it once per run (before the process backend
    forks), and every :class:`DagStepper` resolves through it — so the
    masks are computed once per compiled DAG per process, not once per
    worker task.
    """
    key = id(dag)
    entry = _MASK_BUNDLES.get(key)
    if entry is not None:
        ref, bundle = entry
        if ref() is dag and bundle.graph is graph:
            return bundle
    bundle = DagMaskBundle(dag, graph)
    # Bind the memo as a default so the finalizer survives interpreter
    # shutdown (module globals are cleared before late GC runs).
    _MASK_BUNDLES[key] = (
        weakref.ref(
            dag,
            lambda _ref, _key=key, _memo=_MASK_BUNDLES: _memo.pop(_key, None),
        ),
        bundle,
    )
    return bundle


def has_mask_bundle(dag: PlanDAG, graph: LabeledGraph) -> bool:
    """Whether the memo already holds ``(dag, graph)``'s bundle (session
    cache accounting; never builds)."""
    entry = _MASK_BUNDLES.get(id(dag))
    if entry is None:
        return False
    ref, bundle = entry
    return ref() is dag and bundle.graph is graph


def bound_stepper(computation, dag: PlanDAG, graph: LabeledGraph) -> "DagStepper":
    """Lazily attach a per-task :class:`DagStepper` to a computation copy.

    The runtime shallow-copies each computation per worker task before
    binding its context, and the engine's template instance never runs
    user functions — so a stepper created inside ``process``/
    ``termination_filter`` lands on the task's private copy, is never
    shared between concurrent tasks, and is never pickled (the template
    ships clean).  Re-created if the graph or DAG changes (defensive;
    one task sees one of each).
    """
    stepper = getattr(computation, "_dag_stepper", None)
    if stepper is None or stepper.graph is not graph or stepper.dag is not dag:
        stepper = DagStepper(dag, graph)
        computation._dag_stepper = stepper
    return stepper


def _node_structural_ok(
    node: DagNode,
    graph: LabeledGraph,
    parent_words: tuple[int, ...],
    word: int,
) -> bool:
    """The member-independent half of one step check, shared per node.

    Covers exactly the constraints every member routed through the node
    agrees on — required label, injectivity, back-edge adjacency with
    edge labels — mirroring the corresponding clauses of
    :func:`repro.plan.guided.guided_extension_check`.
    """
    if graph.vertex_label(word) != node.vertex_label:
        return False
    if word in parent_words:
        return False
    if node.back_edges:
        word_bits = graph.neighbor_bits(word)
        uniform = graph.uniform_edge_label
        for earlier, edge_label in node.back_edges:
            matched = parent_words[earlier]
            if not (word_bits >> matched) & 1:
                return False
            if uniform is not None:
                if edge_label != uniform:
                    return False
            elif graph.edge_label(graph.edge_between(word, matched)) != edge_label:
                return False
    return True


def _member_residual_ok(
    plan: MatchingPlan,
    depth: int,
    graph: LabeledGraph,
    parent_words: tuple[int, ...],
    word: int,
) -> bool:
    """The per-member half: whitelist, induced non-edges, restrictions."""
    step = plan.steps[depth]
    allowed = step.allowed
    if allowed is not None and not (allowed >> word) & 1:
        return False
    if plan.induced and step.back_non_edges:
        word_bits = graph.neighbor_bits(word)
        for earlier in step.back_non_edges:
            if (word_bits >> parent_words[earlier]) & 1:
                return False
    for earlier in step.must_exceed:
        if parent_words[earlier] >= word:
            return False
    for earlier in step.must_precede:
        if parent_words[earlier] <= word:
            return False
    return True


class DagStepper:
    """Per-task DAG execution helper with memoized survivor walks.

    The naive functions above re-walk the trie from the root on every
    call, which turns the per-candidate acceptance check into an
    O(depth × patterns) rescan of its parent prefix.  A stepper caches
    ``survivors(prefix)`` per word tuple and derives each entry
    incrementally from its parent's — grouping the surviving members by
    their next trie node so the structural half of the step check
    (label, injectivity, back-edges) runs once per *node* and only the
    per-member residual (whitelist, induced non-edges, symmetry
    restrictions) runs per member.  Checking a whole candidate pool
    against one embedding then costs one cached lookup plus per-node
    structural checks — close to the single-plan work profile.

    :meth:`step` is the fused whole-pool kernel the runtime's expansion
    pass actually calls: per live trie node it collapses the structural
    half of the check — anchor adjacency ∧ union whitelist ∧ label ∧
    shared back-edges — into one big-int ``&`` chain over the node's
    precomputed :class:`DagMaskBundle` masks, decodes the node's
    survivor set once, and applies only the per-member residual
    (whitelist, induced non-edges, symmetry restrictions) to the decoded
    words.  A degree-adaptive hybrid
    (:func:`repro.plan.guided.prefers_row_iteration` on the summed
    anchor degrees) falls back to row iteration with per-candidate
    checks when the pool is tiny; both paths return identical
    ``(num_candidates, survivors)`` streams and warm the survivor cache
    for every accepted child, so the computation hooks' ``accepting``/
    ``extendable`` lookups hit.

    One stepper is created per worker step task (and lazily per task
    copy of the DAG computations), never shared between threads or
    processes, so the cache is private mutable state of a pure task:
    results are a deterministic function of ``(dag, graph, words)``
    with or without it.  The cache is cleared past a bound to keep
    memory proportional to the working set, not the store.
    """

    __slots__ = ("dag", "graph", "bundle", "_cache")

    #: Cache-entry bound; on overflow the cache resets to the root entry.
    CACHE_LIMIT = 8192

    def __init__(self, dag: PlanDAG, graph: LabeledGraph) -> None:
        self.dag = dag
        self.graph = graph
        self.bundle = mask_bundle(dag, graph)
        self._cache: dict[tuple[int, ...], list[int]] = {
            (): list(range(len(dag.plans)))
        }

    def _advance(
        self, parent_survivors: list[int], prefix: tuple[int, ...], word: int
    ) -> list[int]:
        """Members of ``parent_survivors`` that also accept ``word``."""
        depth = len(prefix)
        dag = self.dag
        graph = self.graph
        plans = dag.plans
        paths = dag.paths
        by_node: dict[int, list[int]] = {}
        for p in parent_survivors:
            if plans[p].num_steps > depth:
                by_node.setdefault(paths[p][depth], []).append(p)
        result: list[int] = []
        for node_id, members in by_node.items():
            if not _node_structural_ok(dag.nodes[node_id], graph, prefix, word):
                continue
            for p in members:
                if _member_residual_ok(plans[p], depth, graph, prefix, word):
                    result.append(p)
        result.sort()
        return result

    def survivors(self, words: tuple[int, ...]) -> list[int]:
        """Memoized :func:`dag_survivors` (derived from the parent's)."""
        cache = self._cache
        hit = cache.get(words)
        if hit is not None:
            return hit
        depth = len(words) - 1
        prefix = words[:depth]
        result = self._advance(self.survivors(prefix), prefix, words[depth])
        if len(cache) > self.CACHE_LIMIT:
            cache.clear()
            cache[()] = list(range(len(self.dag.plans)))
        cache[words] = result
        return result

    def _warm_child(self, child: tuple[int, ...], accepted: list[int]) -> None:
        """Cache a freshly derived survivor entry (the fused paths know
        every accepted child's member list as a byproduct)."""
        cache = self._cache
        if len(cache) > self.CACHE_LIMIT:
            cache.clear()
            cache[()] = list(range(len(self.dag.plans)))
        cache[child] = accepted

    def step(
        self, words: tuple[int, ...], strategy: str | None = None
    ) -> tuple[int, tuple[int, ...]]:
        """Fused one-step kernel: ``(num_candidates, survivors)``.

        Equivalent to filtering :meth:`candidates` through :meth:`check`
        word by word — ``num_candidates`` is the deduplicated union
        pool's size, ``survivors`` the ascending words at least one
        surviving member accepts — but computed with pool-level bitset
        algebra per live trie node (or row iteration when the summed
        anchor degrees say the pool is tiny).  ``strategy`` pins a path
        (``"rows"`` / ``"masks"``) for tests and benchmarks; ``None``
        selects adaptively.  Accepted children's survivor lists are
        cached as a byproduct, exactly as on-demand derivation would
        compute them.
        """
        depth = len(words)
        dag = self.dag
        graph = self.graph
        plans = dag.plans
        paths = dag.paths
        nodes = dag.nodes
        by_node: dict[int, list[int]] = {}
        for p in self.survivors(words):
            if plans[p].num_steps > depth:
                by_node.setdefault(paths[p][depth], []).append(p)
        if not by_node:
            return 0, ()
        live_nodes = sorted(by_node)
        # Estimate each node's pool by its cheapest back-neighbor degree
        # (an upper bound on the closure-complete intersection — a
        # popcount the CSR offsets hand over for free); the sum drives
        # the hybrid decision.
        estimate = 0
        for node_id in live_nodes:
            node = nodes[node_id]
            back = node.back_edges
            if back:
                # Unrolled min-degree scan: no genexp/lambda frames on
                # the hot path.
                degree = graph.degree(words[back[0][0]])
                for earlier, _ in back[1:]:
                    vertex_degree = graph.degree(words[earlier])
                    if vertex_degree < degree:
                        degree = vertex_degree
                estimate += degree
            else:
                assert not words, "back-edge-less DAG node reached mid-plan"
                pool = self.bundle.root_pools[node_id]
                estimate += pool.bit_count()
        if strategy == "rows" or (
            strategy is None and prefers_row_iteration(estimate)
        ):
            return self._row_step(words, by_node, live_nodes)
        return self._masked_step(words, by_node, live_nodes)

    def _row_step(
        self,
        words: tuple[int, ...],
        by_node: dict[int, list[int]],
        live_nodes: list[int],
    ) -> tuple[int, tuple[int, ...]]:
        """The hybrid's sparse path: per-candidate probes over the merged
        row pool, with the per-word node/member grouping hoisted out."""
        depth = len(words)
        dag = self.dag
        graph = self.graph
        plans = dag.plans
        nodes = dag.nodes
        pool = _pool_for_nodes(dag, graph, words, live_nodes)
        survivors: list[int] = []
        grouped = [(nodes[node_id], by_node[node_id]) for node_id in live_nodes]
        for word in pool:
            accepted: list[int] = []
            for node, members in grouped:
                if not _node_structural_ok(node, graph, words, word):
                    continue
                for p in members:
                    if _member_residual_ok(plans[p], depth, graph, words, word):
                        accepted.append(p)
            if accepted:
                accepted.sort()
                self._warm_child(words + (word,), accepted)
                survivors.append(word)
        return len(pool), tuple(survivors)

    def _masked_step(
        self,
        words: tuple[int, ...],
        by_node: dict[int, list[int]],
        live_nodes: list[int],
    ) -> tuple[int, tuple[int, ...]]:
        """The dense path: one structural ``&`` chain per live node over
        the bundle's masks, decoded once per node; per-member residuals
        run on the decoded survivors only.  The node pool is the
        closure-complete back-row intersection (see
        :func:`_pool_for_nodes`), so the shared back-edge ``&``s price
        into the pool — the same chain the structural check needs anyway
        — instead of inflating the counted candidate stream."""
        depth = len(words)
        dag = self.dag
        graph = self.graph
        plans = dag.plans
        nodes = dag.nodes
        bundle = self.bundle
        exclude = ~to_bitset(words)
        merged_pool = 0
        word_members: dict[int, list[int]] = {}
        for node_id in live_nodes:
            node = nodes[node_id]
            if not node.back_edges:
                pool_bits = bundle.root_pools[node_id]
                struct = pool_bits & bundle.label_masks[node_id]
            else:
                back = node.back_edges
                pool_bits = graph.neighbor_bits(words[back[0][0]])
                for earlier, _ in back[1:]:
                    pool_bits &= graph.neighbor_bits(words[earlier])
                if node.allowed is not None:
                    pool_bits &= node.allowed
                verdict = bundle.edge_label_ok[node_id]
                if verdict is False:
                    struct = 0
                else:
                    struct = pool_bits & bundle.label_masks[node_id]
                    if struct:
                        struct &= exclude
            merged_pool |= pool_bits
            if not struct:
                continue
            decoded: Sequence[int] = from_bitset(struct)
            if node.back_edges and bundle.edge_label_ok[node_id] is None:
                # Mixed edge labels: adjacency alone does not imply the
                # required labels; confirm on the decoded survivors only.
                decoded = [
                    word
                    for word in decoded
                    if all(
                        graph.edge_label(graph.edge_between(word, words[earlier]))
                        == edge_label
                        for earlier, edge_label in node.back_edges
                    )
                ]
            members = by_node[node_id]
            for word in decoded:
                for p in members:
                    if _member_residual_ok(plans[p], depth, graph, words, word):
                        word_members.setdefault(word, []).append(p)
        for word in word_members:
            accepted = word_members[word]
            accepted.sort()
            self._warm_child(words + (word,), accepted)
        return merged_pool.bit_count(), tuple(sorted(word_members))

    def candidates(self, words: tuple[int, ...]) -> Sequence[int]:
        """Memoized-walk :func:`dag_candidates` (the generate hook)."""
        dag = self.dag
        position = len(words)
        live_nodes = sorted(
            {
                dag.paths[p][position]
                for p in self.survivors(words)
                if dag.plans[p].num_steps > position
            }
        )
        return _pool_for_nodes(dag, self.graph, words, live_nodes)

    def check(
        self, graph: LabeledGraph, parent_words: tuple[int, ...], word: int
    ) -> bool:
        """Memoized-walk :func:`dag_extension_check` (the checker hook)."""
        depth = len(parent_words)
        dag = self.dag
        plans = dag.plans
        paths = dag.paths
        by_node: dict[int, list[int]] = {}
        for p in self.survivors(parent_words):
            if plans[p].num_steps > depth:
                by_node.setdefault(paths[p][depth], []).append(p)
        for node_id, members in by_node.items():
            if not _node_structural_ok(
                dag.nodes[node_id], graph, parent_words, word
            ):
                continue
            for p in members:
                if _member_residual_ok(
                    plans[p], depth, graph, parent_words, word
                ):
                    return True
        return False

    def accepting(self, words: tuple[int, ...]) -> list[int]:
        """Memoized-walk :func:`accepting_patterns` (emission hook)."""
        size = len(words)
        plans = self.dag.plans
        return [
            p for p in self.survivors(words) if plans[p].num_steps == size
        ]

    def extendable(self, words: tuple[int, ...]) -> bool:
        """Memoized-walk :func:`dag_extendable` (termination hook)."""
        size = len(words)
        plans = self.dag.plans
        return any(plans[p].num_steps > size for p in self.survivors(words))
