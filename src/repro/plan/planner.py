"""Compile a query pattern into a guided exploration plan.

The exhaustive filter-process engine is *exploration-agnostic*: it extends
every canonical embedding in every direction and only afterwards asks the
application filter whether the candidate still embeds in the query.  For
graph matching that wastes almost all of the generated candidates.  A
:class:`MatchingPlan` front-loads the query analysis instead:

* a **vertex matching order** — pattern vertices sorted so each step's
  vertex is adjacent to an already-matched one, highest-connectivity
  first, so mismatches are discovered as early as possible;
* **per-step constraints** — the required vertex label, the back-edges to
  already-matched positions (with their edge labels), the back-non-edges
  (induced semantics only), and the symmetry-breaking order restrictions
  of :mod:`repro.plan.symmetry`;
* an **anchor** choice per step — candidates are drawn from the adjacency
  list of one already-matched back-neighbor instead of the whole frontier.

The plan is immutable, picklable plain data: the process backend ships it
to workers inside the :class:`~repro.runtime.tasks.StepContext`, and the
actual candidate generation lives in :mod:`repro.plan.guided`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Iterable

from ..core.pattern import Pattern
from ..graph.bitset import to_bitset
from .symmetry import symmetry_breaking_restrictions


class PlanError(ValueError):
    """Raised when a pattern cannot be compiled into a guided plan."""


@dataclass(frozen=True)
class PlanStep:
    """Constraints on the graph vertex matched at one plan position."""

    #: Index of this step in the matching order (== embedding size before it).
    position: int
    #: The pattern vertex this step matches.
    pattern_vertex: int
    #: Required vertex label.
    vertex_label: int
    #: ``(earlier position, required edge label)`` — the candidate must be
    #: adjacent to the vertex matched at that position, with that label.
    back_edges: tuple[tuple[int, int], ...]
    #: Earlier positions the candidate must NOT be adjacent to (checked
    #: only under induced semantics).
    back_non_edges: tuple[int, ...]
    #: Earlier positions whose matched vertex id must be *smaller* than
    #: the candidate (restrictions ``m(earlier) < m(this)``).
    must_exceed: tuple[int, ...]
    #: Earlier positions whose matched vertex id must be *larger* than
    #: the candidate (restrictions ``m(this) < m(earlier)``).
    must_precede: tuple[int, ...]
    #: Optional whitelist of graph vertices this step may match, as a
    #: big-int bitset over vertex ids (``None`` = unrestricted; ``0`` =
    #: empty whitelist, which blocks everything).  Guided FSM pushes a
    #: candidate pattern's parent MNI domains down here
    #: (:func:`restrict_plan`), GraMi-style: every full match maps
    #: inherited pattern vertices into the parent's domains, so pruning
    #: against them loses nothing.  The bitset form makes the hot pool
    #: intersection in :func:`repro.plan.guided.guided_candidates` a
    #: single ``&``.
    allowed: int | None = None


@dataclass(frozen=True)
class MatchingPlan:
    """A compiled query: matching order + per-step constraints.

    ``order[i]`` is the pattern vertex matched at step ``i``; a guided
    embedding's word ``i`` is the graph vertex assigned to it, so a full
    embedding of ``num_steps`` words IS a match mapping.  Symmetry
    restrictions guarantee each distinct occurrence is found through
    exactly one word sequence — no canonicality check needed.
    """

    pattern: Pattern
    induced: bool
    order: tuple[int, ...]
    steps: tuple[PlanStep, ...]
    #: Restrictions in pattern-vertex terms ``(u, v)`` meaning
    #: ``m(u) < m(v)`` (also baked into the steps; kept for reporting).
    restrictions: tuple[tuple[int, int], ...]
    num_automorphisms: int

    @property
    def num_steps(self) -> int:
        return len(self.steps)

    def describe(self) -> str:
        """One-line human-readable plan summary (CLI / benchmarks)."""
        order = ",".join(map(str, self.order))
        rules = " ".join(f"m({u})<m({v})" for u, v in self.restrictions)
        sizes = ",".join(
            f"{step.position}:{step.allowed.bit_count()}"
            for step in self.steps
            if step.allowed is not None
        )
        return (
            f"order=[{order}] |Aut|={self.num_automorphisms}"
            f" restrictions=[{rules or 'none'}]"
            f" whitelists=[{sizes or 'none'}]"
            f" semantics={'induced' if self.induced else 'monomorphic'}"
        )


def _matching_order(pattern: Pattern) -> tuple[int, ...]:
    """Connectivity-first greedy order over the pattern vertices.

    Start from the highest-degree vertex, then repeatedly pick the
    unplaced vertex with the most already-placed neighbors (ties broken
    toward higher degree, then smaller id) — the same fail-fast heuristic
    the VF2 substitute uses, made explicit and inspectable here.
    """
    n = pattern.num_vertices
    adjacency: list[set[int]] = [set() for _ in range(n)]
    for u, v, _ in pattern.edges:
        adjacency[u].add(v)
        adjacency[v].add(u)
    degree = [len(adjacency[v]) for v in range(n)]
    start = max(range(n), key=lambda v: (degree[v], -v))
    order = [start]
    placed = {start}
    while len(order) < n:
        frontier = [v for v in range(n) if v not in placed and adjacency[v] & placed]
        # compile_plan validates connectivity up front; an empty frontier
        # here would mean the two checks disagree.
        assert frontier, "disconnected pattern reached the order builder"
        chosen = max(
            frontier, key=lambda v: (len(adjacency[v] & placed), degree[v], -v)
        )
        order.append(chosen)
        placed.add(chosen)
    return tuple(order)


def _validated_order(pattern: Pattern, order: tuple[int, ...]) -> tuple[int, ...]:
    """Check a caller-supplied matching order (prefix-affine DAG mode).

    The order must be a permutation of the pattern vertices in which every
    vertex after the first is adjacent to an earlier one — the same
    connected-prefix invariant :func:`_matching_order` guarantees, without
    which the anchor-based candidate generator would be incomplete.
    """
    order = tuple(order)
    if sorted(order) != list(range(pattern.num_vertices)):
        raise PlanError(
            f"matching order {order!r} is not a permutation of the "
            f"{pattern.num_vertices} pattern vertices"
        )
    adjacency: dict[int, set[int]] = {v: set() for v in range(pattern.num_vertices)}
    for u, v, _ in pattern.edges:
        adjacency[u].add(v)
        adjacency[v].add(u)
    placed: set[int] = set()
    for position, vertex in enumerate(order):
        if position and not (adjacency[vertex] & placed):
            raise PlanError(
                f"matching order {order!r} places vertex {vertex} with no "
                "already-placed neighbor — every step after the first must "
                "extend the connected prefix"
            )
        placed.add(vertex)
    return order


def compile_plan(
    pattern: Pattern,
    induced: bool = True,
    *,
    order: tuple[int, ...] | None = None,
    catalog=None,
) -> MatchingPlan:
    """Compile ``pattern`` into a :class:`MatchingPlan`.

    ``induced=True`` plans for vertex-induced occurrences (back-non-edges
    are enforced), ``False`` for monomorphisms (extra graph edges between
    matched vertices are allowed).  ``order`` overrides the connectivity
    heuristic with an explicit matching order (validated: a permutation
    with connected prefixes) — the prefix-affine mode multi-query DAG
    compilation uses so sibling patterns agree on their common
    subpattern's order (:mod:`repro.plan.dag`).  ``catalog`` (a
    :class:`~repro.plan.stats.GraphCatalog`; ignored when ``order`` is
    given) switches the order choice to the cost-based search of
    :func:`repro.plan.cost.choose_order` — the heuristic order still
    wins every cost tie, and order choice never affects *results*, only
    how many candidates are generated finding them.  Raises
    :class:`PlanError` for empty or disconnected patterns.
    """
    if pattern.num_vertices == 0:
        raise PlanError("query pattern must not be empty")
    if not pattern.is_connected():
        # Same wording as GraphMatching's validation — one user error,
        # one message, whichever mode hits it first.
        raise PlanError("query pattern must be connected")
    if order is None:
        if catalog is None:
            order = _matching_order(pattern)
        else:
            # Local import: cost builds on the planner's heuristic.
            from .cost import choose_order

            order = choose_order(pattern, catalog).order
    else:
        order = _validated_order(pattern, order)
    position_of = {vertex: i for i, vertex in enumerate(order)}
    edge_labels = pattern.edge_dict()
    restrictions, num_automorphisms = symmetry_breaking_restrictions(pattern)

    adjacency: dict[int, dict[int, int]] = {v: {} for v in range(pattern.num_vertices)}
    for (u, v), label in edge_labels.items():
        adjacency[u][v] = label
        adjacency[v][u] = label

    steps: list[PlanStep] = []
    for position, vertex in enumerate(order):
        back_edges = tuple(
            sorted(
                (position_of[other], label)
                for other, label in adjacency[vertex].items()
                if position_of[other] < position
            )
        )
        back_non_edges = tuple(
            earlier
            for earlier in range(position)
            if order[earlier] not in adjacency[vertex]
        )
        # A restriction (u, v) is checkable once both endpoints are
        # matched; attach it to the later position.
        must_exceed = tuple(
            sorted(
                position_of[u]
                for u, v in restrictions
                if v == vertex and position_of[u] < position
            )
        )
        must_precede = tuple(
            sorted(
                position_of[v]
                for u, v in restrictions
                if u == vertex and position_of[v] < position
            )
        )
        steps.append(
            PlanStep(
                position=position,
                pattern_vertex=vertex,
                vertex_label=pattern.vertex_labels[vertex],
                back_edges=back_edges,
                back_non_edges=back_non_edges,
                must_exceed=must_exceed,
                must_precede=must_precede,
            )
        )
    return MatchingPlan(
        pattern=pattern,
        induced=induced,
        order=order,
        steps=tuple(steps),
        restrictions=restrictions,
        num_automorphisms=num_automorphisms,
    )


def restrict_plan(
    plan: MatchingPlan,
    allowed_by_vertex: dict[int, Iterable[int] | int],
) -> MatchingPlan:
    """A copy of ``plan`` whose steps only match whitelisted vertices.

    ``allowed_by_vertex`` maps pattern vertices to the graph vertices
    they may be assigned — as any iterable of vertex ids (guided FSM
    passes frozenset domains) or an already-packed bitset ``int``;
    vertices absent from the dict keep whatever whitelist the step
    already carries.  Whitelists are stored on the steps in bitset form
    (:mod:`repro.graph.bitset`).  Restrictions **compose**: applying a
    second overlay intersects with the first (a vertex must satisfy
    every whitelist ever pushed onto it), so ``restrict_plan`` applied
    twice is the conjunction, never a silent overwrite — and applying
    the same overlay twice is idempotent.  The compiled order,
    constraints, and symmetry restrictions are reused unchanged, so
    restricting a cached plan costs no recompilation; soundness is the
    caller's contract — the whitelists must cover every image the
    restricted plan could otherwise produce (guided FSM derives them
    from complete parent domains).
    """
    steps = []
    for step in plan.steps:
        if step.pattern_vertex not in allowed_by_vertex:
            steps.append(step)
            continue
        incoming = _as_bitset(allowed_by_vertex[step.pattern_vertex])
        if incoming is None or step.allowed is None:
            combined = step.allowed if incoming is None else incoming
        else:
            combined = step.allowed & incoming
        steps.append(dataclasses.replace(step, allowed=combined))
    return dataclasses.replace(plan, steps=tuple(steps))


def _as_bitset(allowed: Iterable[int] | int | None) -> int | None:
    """Normalize a whitelist value to its bitset form (``None`` passes)."""
    if allowed is None or isinstance(allowed, int):
        return allowed
    return to_bitset(allowed)
