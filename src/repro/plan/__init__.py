"""Pattern-aware exploration planning: compile queries into guided plans.

The planner subsystem turns a query :class:`~repro.core.pattern.Pattern`
into a :class:`MatchingPlan` — a vertex matching order with per-step
label/adjacency constraints plus symmetry-breaking order restrictions —
and the guided generator executes it inside the runtime's step tasks,
proposing only candidates that satisfy the next plan step.  See
:mod:`repro.plan.planner` (compilation), :mod:`repro.plan.symmetry`
(automorphism restrictions), :mod:`repro.plan.guided` (execution),
:mod:`repro.plan.dag` (multi-query plan DAGs: one shared-prefix
exploration for a whole pattern batch), and :mod:`repro.plan.fsm_guide`
(per-candidate plans + MNI domain math for plan-guided FSM).  The
statistics-driven half lives in :mod:`repro.plan.stats` (the per-graph
:class:`GraphCatalog`) and :mod:`repro.plan.cost` (selectivity-chain
order costing + the exhaustive/beam order search).
"""

from .cost import (
    OrderChoice,
    OrderEstimate,
    StepEstimate,
    choose_order,
    estimate_order,
)
from .dag import (
    DagMaskBundle,
    DagNode,
    DagStepper,
    PlanDAG,
    accepting_patterns,
    build_plan_dag,
    dag_candidates,
    dag_extension_check,
    dag_step_zero_pool,
    dag_survivors,
    mask_bundle,
    restrict_dag,
)
from .fsm_guide import (
    compile_candidate_dag,
    compile_candidate_plan,
    domain_sets_from_matches,
    label_triples,
    mni_support_from_domains,
    one_edge_extensions,
    single_edge_candidates,
)
from .guided import (
    guided_candidates,
    guided_extension_check,
    guided_survivors,
    match_mapping,
    plan_checker,
)
from .planner import MatchingPlan, PlanError, PlanStep, compile_plan
from .shapes import NAMED_SHAPES, read_pattern_file, resolve_query
from .stats import GraphCatalog, build_catalog
from .symmetry import (
    pattern_automorphisms,
    satisfies_restrictions,
    symmetry_breaking_restrictions,
)

__all__ = [
    "DagMaskBundle",
    "DagNode",
    "DagStepper",
    "GraphCatalog",
    "MatchingPlan",
    "NAMED_SHAPES",
    "OrderChoice",
    "OrderEstimate",
    "PlanDAG",
    "PlanError",
    "PlanStep",
    "StepEstimate",
    "accepting_patterns",
    "build_catalog",
    "build_plan_dag",
    "choose_order",
    "estimate_order",
    "compile_candidate_dag",
    "compile_candidate_plan",
    "compile_plan",
    "dag_candidates",
    "dag_extension_check",
    "dag_step_zero_pool",
    "dag_survivors",
    "restrict_dag",
    "domain_sets_from_matches",
    "guided_candidates",
    "guided_extension_check",
    "guided_survivors",
    "label_triples",
    "mask_bundle",
    "match_mapping",
    "mni_support_from_domains",
    "one_edge_extensions",
    "pattern_automorphisms",
    "plan_checker",
    "read_pattern_file",
    "resolve_query",
    "satisfies_restrictions",
    "single_edge_candidates",
    "symmetry_breaking_restrictions",
]
