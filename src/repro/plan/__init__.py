"""Pattern-aware exploration planning: compile queries into guided plans.

The planner subsystem turns a query :class:`~repro.core.pattern.Pattern`
into a :class:`MatchingPlan` — a vertex matching order with per-step
label/adjacency constraints plus symmetry-breaking order restrictions —
and the guided generator executes it inside the runtime's step tasks,
proposing only candidates that satisfy the next plan step.  See
:mod:`repro.plan.planner` (compilation), :mod:`repro.plan.symmetry`
(automorphism restrictions), and :mod:`repro.plan.guided` (execution).
"""

from .guided import (
    guided_candidates,
    guided_extension_check,
    match_mapping,
    plan_checker,
)
from .planner import MatchingPlan, PlanError, PlanStep, compile_plan
from .shapes import NAMED_SHAPES, read_pattern_file, resolve_query
from .symmetry import (
    pattern_automorphisms,
    satisfies_restrictions,
    symmetry_breaking_restrictions,
)

__all__ = [
    "MatchingPlan",
    "NAMED_SHAPES",
    "PlanError",
    "PlanStep",
    "compile_plan",
    "guided_candidates",
    "guided_extension_check",
    "match_mapping",
    "pattern_automorphisms",
    "plan_checker",
    "read_pattern_file",
    "resolve_query",
    "satisfies_restrictions",
    "symmetry_breaking_restrictions",
]
