"""Per-candidate plan compilation and MNI domains for plan-guided FSM.

GraMi pairs level-wise candidate generation with a per-pattern CSP/VFLib
matcher; this module is the same pairing for the planner subsystem: each
FSM candidate pattern is compiled into a monomorphic
:class:`~repro.plan.planner.MatchingPlan` and its embeddings are
discovered through the guided-candidate runtime path, with
minimum-node-image domains accumulated directly from guided matches —
no full embedding store is materialized and re-aggregated.

Invariants this module relies on (and preserves):

* **one word sequence per occurrence** — the plan's symmetry-breaking
  restrictions generate exactly one representative per automorphism
  class of monomorphisms, so the per-position image sets built here are
  representative images only; :func:`mni_support_from_domains` folds the
  canonical pattern's automorphism orbits at read time, which restores
  the full "any automorphism of e" clause of the MNI definition (every
  monomorphism is a representative composed with an automorphism, and
  automorphisms permute positions within orbits);
* **canonical candidate keying** — candidates are always canonical
  patterns (:func:`single_edge_candidates` / :func:`one_edge_extensions`
  canonicalize and deduplicate), so a plan cache keyed by canonical
  pattern (e.g. the session's, via ``Miner._plan_for``) never compiles
  the same candidate twice across generations or repeated runs;
* **monomorphic semantics** — edge-based FSM embeddings are edge sets,
  i.e. monomorphism images, so candidate plans are compiled with
  ``induced=False`` (extra graph edges between matched vertices are
  allowed; they belong to a different candidate's edge set).

Candidate generation here is deliberately an independent implementation
of the same level-wise pattern growth the GraMi baseline uses
(:mod:`repro.baselines.grami`) — the equivalence tests compare the two,
so sharing code would make the comparison partly circular.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from ..core.pattern import Pattern
from ..graph import LabeledGraph
from .dag import PlanDAG, build_plan_dag, mask_bundle
from .guided import match_mapping
from .planner import MatchingPlan, PlanError, compile_plan

#: A plan-DAG source for a whole level's candidate batch (canonical
#: patterns, deterministic order).  The default compiles fresh with a
#: per-run memo; a session passes its cross-query DAG cache so repeated
#: runs recompile nothing.
DagProvider = Callable[[tuple[Pattern, ...]], PlanDAG]


def compile_candidate_plan(
    pattern: Pattern, *, catalog=None
) -> MatchingPlan:
    """Compile one FSM candidate pattern into its guided matching plan.

    The pattern must be canonical (candidates from this module always
    are) and connected; the plan uses monomorphic semantics, matching
    edge-based FSM embedding semantics.  ``catalog`` (a
    :class:`~repro.plan.stats.GraphCatalog`) switches the matching-order
    choice to the cost-based search — results are identical either way.
    """
    if not pattern.is_canonical():
        raise PlanError(
            "FSM candidate plans are cached by canonical pattern; "
            "canonicalize the candidate before compiling"
        )
    return compile_plan(pattern, induced=False, catalog=catalog)


def compile_candidate_dag(
    patterns: tuple[Pattern, ...], *, catalog=None
) -> PlanDAG:
    """Compile one FSM level's candidate batch into a shared-prefix DAG.

    Every member must be canonical (candidates from this module always
    are — DAG caches key by the canonical batch); the DAG uses
    monomorphic semantics, matching edge-based FSM embedding semantics.
    ``catalog`` enables the jointly-costed harmonized order search
    (:func:`repro.plan.dag.build_plan_dag`).
    """
    for pattern in patterns:
        if not pattern.is_canonical():
            raise PlanError(
                "FSM candidate DAGs are cached by canonical pattern batch; "
                "canonicalize the candidates before compiling"
            )
    return build_plan_dag(patterns, induced=False, catalog=catalog)


def prewarm_level_dag(dag: PlanDAG, graph: LabeledGraph) -> PlanDAG:
    """Warm a level DAG's fused-kernel masks before the engine run.

    The batched drivers restrict a cached base DAG per level
    (:func:`repro.plan.dag.restrict_dag` produces a *new* ``PlanDAG``),
    so the restricted DAG's :class:`~repro.plan.dag.DagMaskBundle` is
    built here — in the driver process, before any backend spins up —
    and every worker task's fused :class:`~repro.plan.dag.DagStepper`
    resolves it from the memo instead of rebuilding per task (fork-based
    process workers inherit it copy-on-write).  Returns ``dag`` so the
    call slots into the driver's restrict-then-run expression.
    """
    mask_bundle(dag, graph)
    return dag


def default_dag_provider() -> DagProvider:
    """A memoizing :data:`DagProvider` for one driver run (no session)."""
    memo: dict[tuple[Pattern, ...], PlanDAG] = {}

    def provide(patterns: tuple[Pattern, ...]) -> PlanDAG:
        dag = memo.get(patterns)
        if dag is None:
            dag = compile_candidate_dag(patterns)
            memo[patterns] = dag
        return dag

    return provide


# ----------------------------------------------------------------------
# Level-wise candidate generation (pattern growth over label triples)
# ----------------------------------------------------------------------
def label_triples(
    graph: LabeledGraph, *, catalog=None
) -> set[tuple[int, int, int]]:
    """Distinct ``(vertex label, edge label, vertex label)`` triples
    present in the graph, both orientations — the alphabet any frequent
    pattern's edges must be drawn from.  ``catalog`` (a
    :class:`~repro.plan.stats.GraphCatalog` of the same graph) answers
    from the cached statistics instead of re-walking the edge list —
    the catalog records exactly this set."""
    if catalog is not None:
        return set(catalog.triples)
    triples: set[tuple[int, int, int]] = set()
    for eid, u, v in graph.edge_iter():
        lu, lv = graph.vertex_label(u), graph.vertex_label(v)
        le = graph.edge_label(eid)
        triples.add((lu, le, lv))
        triples.add((lv, le, lu))
    return triples


def _sorted_candidates(patterns: Iterable[Pattern]) -> list[Pattern]:
    """Deterministic evaluation order (keeps runs byte-identical)."""
    return sorted(set(patterns), key=lambda p: (p.vertex_labels, p.edges))


def single_edge_candidates(graph: LabeledGraph) -> list[Pattern]:
    """Level-1 candidates: one canonical single-edge pattern per distinct
    label triple class of the graph."""
    return _sorted_candidates(
        Pattern((lu, lv), ((0, 1, le),)).canonical()
        for lu, le, lv in label_triples(graph)
    )


def single_edge_domains(
    graph: LabeledGraph,
) -> list[tuple[Pattern, list[set[int]]]]:
    """Level-1 evaluation in closed form: one pass over the edges.

    A single-edge pattern's matches are exactly the edges of its label
    triple class, so its *full* per-position image sets (both
    orientations — no symmetry restriction to fold back) fall out of one
    edge scan; running the guided engine per triple class would cost a
    step-0 pool scan plus a neighborhood walk per class for the same
    answer.  Returns ``(canonical pattern, per-position image sets)``
    in deterministic candidate order.
    """
    domains: dict[Pattern, list[set[int]]] = {}
    for eid, u, v in graph.edge_iter():
        le = graph.edge_label(eid)
        for a, b in ((u, v), (v, u)):
            quick = Pattern(
                (graph.vertex_label(a), graph.vertex_label(b)), ((0, 1, le),)
            )
            canonical, mapping = quick.canonical_mapping()
            sets = domains.get(canonical)
            if sets is None:
                sets = [set(), set()]
                domains[canonical] = sets
            sets[mapping[0]].add(a)
            sets[mapping[1]].add(b)
    return sorted(
        domains.items(), key=lambda item: (item[0].vertex_labels, item[0].edges)
    )


def one_edge_extensions_with_maps(
    pattern: Pattern, triples: set[tuple[int, int, int]]
) -> list[tuple[Pattern, tuple[int, ...]]]:
    """Canonical one-edge extensions of ``pattern``, with provenance.

    Two growth moves, as in level-wise pattern mining: attach a new
    vertex to an existing position, or close an edge between two
    existing positions.  Each result pairs the canonical extension ``Q``
    with the *parent map*: position ``i`` of the map is the ``Q`` vertex
    that parent vertex ``i`` became under canonicalization.  The same
    ``Q`` can arise through several moves/maps; every pair is returned
    (deduplicated), because each map independently justifies a
    domain push-down and their restrictions may be intersected.
    """
    k = pattern.num_vertices
    existing = {(i, j) for i, j, _ in pattern.edges}
    edge_labels = {le for _, le, _ in triples}
    results: set[tuple[Pattern, tuple[int, ...]]] = set()

    def grow(vertex_labels, edges) -> None:
        canonical, mapping = Pattern(vertex_labels, edges).canonical_mapping()
        results.add((canonical, mapping[:k]))

    for i in range(k):
        anchor_label = pattern.vertex_labels[i]
        for lu, le, lv in triples:
            if lu != anchor_label:
                continue
            grow(
                pattern.vertex_labels + (lv,),
                tuple(sorted(pattern.edges + ((i, k, le),))),
            )
    for i in range(k):
        for j in range(i + 1, k):
            if (i, j) in existing:
                continue
            li, lj = pattern.vertex_labels[i], pattern.vertex_labels[j]
            for le in edge_labels:
                if (li, le, lj) not in triples:
                    continue
                grow(
                    pattern.vertex_labels,
                    tuple(sorted(pattern.edges + ((i, j, le),))),
                )
    return sorted(results, key=lambda qm: (qm[0].vertex_labels, qm[0].edges, qm[1]))


def one_edge_extensions(
    pattern: Pattern, triples: set[tuple[int, int, int]]
) -> list[Pattern]:
    """All canonical one-edge extensions of ``pattern`` consistent with
    the graph's label triples (deduplicated, provenance dropped)."""
    return _sorted_candidates(
        q for q, _ in one_edge_extensions_with_maps(pattern, triples)
    )


def connected_subpatterns_one_edge_removed(pattern: Pattern) -> list[Pattern]:
    """Canonical connected subpatterns of ``pattern`` with one edge less.

    Removing an edge may isolate a (then dropped) endpoint; removals
    that disconnect the pattern are skipped — connected exploration can
    only ever reason about connected subpatterns.  This is the Apriori
    check's enumeration: a candidate is viable only if *every* such
    subpattern is frequent (MNI anti-monotonicity).
    """
    subpatterns: set[Pattern] = set()
    for removed in range(pattern.num_edges):
        edges = tuple(
            e for index, e in enumerate(pattern.edges) if index != removed
        )
        degree = [0] * pattern.num_vertices
        for i, j, _ in edges:
            degree[i] += 1
            degree[j] += 1
        keep = [v for v in range(pattern.num_vertices) if degree[v] > 0]
        if not keep:
            continue
        reindex = {old: new for new, old in enumerate(keep)}
        sub = Pattern(
            tuple(pattern.vertex_labels[v] for v in keep),
            tuple(sorted((reindex[i], reindex[j], le) for i, j, le in edges)),
        )
        if sub.is_connected():
            subpatterns.add(sub.canonical())
    return _sorted_candidates(subpatterns)


def has_infrequent_subpattern(
    pattern: Pattern, frequent: "set[Pattern] | dict[Pattern, int]"
) -> bool:
    """Apriori viability check against the previous level's frequent set."""
    return any(
        sub not in frequent
        for sub in connected_subpatterns_one_edge_removed(pattern)
    )




# ----------------------------------------------------------------------
# MNI domain extraction from guided matches
# ----------------------------------------------------------------------
def domain_sets_from_matches(
    plan: MatchingPlan, matches: Iterable[tuple[int, ...]]
) -> list[set[int]]:
    """Per-pattern-position image sets from full guided word sequences.

    ``matches`` are plan-ordered words (what the guided runtime stores);
    position ``i`` of the result is the set of graph vertices matched to
    pattern vertex ``i`` of ``plan.pattern`` across the given matches.
    This is the pure-function core the guided FSM computation applies
    per match; tests use it as a micro-oracle.
    """
    sets: list[set[int]] = [set() for _ in range(plan.num_steps)]
    for words in matches:
        mapping = match_mapping(plan, words)
        for position, vertex in enumerate(mapping):
            sets[position].add(vertex)
    return sets


def mni_support_from_domains(
    domain_sets: Sequence[Iterable[int]], orbits: Sequence[int]
) -> int:
    """MNI support of orbit-folded representative domains.

    Guided matches are symmetry-unique representatives, so each orbit's
    effective domain is the union over its positions — exactly the
    missing automorphism images (see the module docstring).  Delegates
    to :meth:`repro.apps.support.Domain.support`, the one home of the
    fold (imported lazily: ``apps`` imports ``plan`` at module load).
    """
    from ..apps.support import Domain

    return Domain([frozenset(s) for s in domain_sets]).support(orbits)
