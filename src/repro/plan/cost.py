"""Cost-based matching-order selection over a statistics catalog.

Given a query pattern and a :class:`~repro.plan.stats.GraphCatalog`,
this module prices candidate matching orders with a **selectivity
chain** and picks the cheapest:

* the step-0 pool is the anchor label's frequency;
* every later step draws its candidates from one already-matched
  back-neighbor's adjacency row, so its per-embedding pool is the
  *minimum* expected anchor degree over the placed back-neighbors
  (mirroring the guided kernel's min-degree anchor choice);
* of those candidates, the expected survivors are the new label's
  frequency scaled by one **fan-out / closure factor per back-edge**
  (``pair_counts`` selectivities, independence-assumed), and halved
  once per symmetry restriction that becomes checkable at the step —
  survivors feed the next step's multiplier, so a cheap early step
  shrinks every later pool.

The total predicted cost of an order is the sum of per-step expected
candidate counts — the same quantity the runtime meters as
``total_candidates``, which is what the benchmarks compare.

Order search is **exhaustive** over connected-prefix permutations for
small patterns (≤ :data:`EXHAUSTIVE_VERTICES` vertices) and a greedy
**beam** (width :data:`BEAM_WIDTH`) beyond.  The planner's degree/
connectivity heuristic order is always evaluated too, and wins every
tie: on graphs where the catalog cannot distinguish orders (one label,
uniform statistics) the cost-based planner reproduces the heuristic
plan exactly, so unlabeled workloads keep byte-identical candidate
streams.  Order choice never affects *results* — only which candidates
are generated on the way — so the exhaustive-oracle equality guarantees
are untouched by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.pattern import Pattern
from .planner import _matching_order
from .stats import GraphCatalog
from .symmetry import symmetry_breaking_restrictions

#: Patterns up to this many vertices get an exhaustive connected-prefix
#: order search (5! = 120 orders at the bound — negligible next to one
#: engine run); larger patterns use the beam.
EXHAUSTIVE_VERTICES = 5

#: Beam width for the greedy order search on larger patterns.
BEAM_WIDTH = 8

#: Relative margin the best cost-based order must clear to displace the
#: heuristic — guards against replacing a known-good order on modelling
#: noise (and makes exact ties deterministically heuristic).
_IMPROVEMENT_MARGIN = 1e-9


@dataclass(frozen=True)
class StepEstimate:
    """Predicted cost of one step of a candidate matching order."""

    position: int
    pattern_vertex: int
    #: Expected candidates generated per parent embedding (the anchor
    #: row size; label frequency at step 0).
    pool: float
    #: Expected candidates generated at this step in total.
    candidates: float
    #: Expected embeddings surviving this step's full check.
    matches: float


@dataclass(frozen=True)
class OrderEstimate:
    """A candidate order with its predicted per-step and total cost."""

    order: tuple[int, ...]
    steps: tuple[StepEstimate, ...]

    @property
    def total_candidates(self) -> float:
        return sum(step.candidates for step in self.steps)

    @property
    def expected_matches(self) -> float:
        return self.steps[-1].matches if self.steps else 0.0

    def describe(self) -> str:
        """One line per step: pool, cumulative candidates, survivors."""
        lines = []
        for step in self.steps:
            lines.append(
                f"  step {step.position}: vertex {step.pattern_vertex}"
                f" pool~{step.pool:,.1f}"
                f" candidates~{step.candidates:,.1f}"
                f" matches~{step.matches:,.1f}"
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class OrderChoice:
    """The outcome of :func:`choose_order` (also the explain payload)."""

    pattern: Pattern
    chosen: OrderEstimate
    heuristic: OrderEstimate
    #: True when the cost model displaced the heuristic order.
    cost_based: bool
    reason: str
    #: Number of candidate orders the search evaluated.
    considered: int

    @property
    def order(self) -> tuple[int, ...]:
        return self.chosen.order

    def describe(self) -> str:
        """Multi-line explain report (``Miner.explain`` / ``--explain``)."""
        winner = "cost-based" if self.cost_based else "heuristic"
        lines = [
            f"order=[{','.join(map(str, self.chosen.order))}]"
            f" winner={winner} considered={self.considered}",
            f"reason: {self.reason}",
            f"chosen order (~{self.chosen.total_candidates:,.1f} candidates):",
            self.chosen.describe(),
        ]
        if self.cost_based:
            lines += [
                f"heuristic order"
                f" [{','.join(map(str, self.heuristic.order))}]"
                f" (~{self.heuristic.total_candidates:,.1f} candidates):",
                self.heuristic.describe(),
            ]
        return "\n".join(lines)


class _PatternContext:
    """Pattern-shape facts every estimate step reads (built once)."""

    __slots__ = ("labels", "adjacency", "restriction_at")

    def __init__(self, pattern: Pattern) -> None:
        n = pattern.num_vertices
        self.labels = pattern.vertex_labels
        self.adjacency: list[set[int]] = [set() for _ in range(n)]
        for u, v, _ in pattern.edges:
            self.adjacency[u].add(v)
            self.adjacency[v].add(u)
        #: restriction endpoints as vertex pairs — a restriction becomes
        #: checkable (and halves the survivors) at the step placing its
        #: later endpoint.
        restrictions, _ = symmetry_breaking_restrictions(pattern)
        self.restriction_at: tuple[tuple[int, int], ...] = restrictions


def _estimate_step(
    context: _PatternContext,
    catalog: GraphCatalog,
    position_of: dict[int, int],
    matches: float,
    vertex: int,
) -> tuple[float, float, float]:
    """``(pool, candidates, survivors)`` of placing ``vertex`` next.

    ``position_of`` maps the already-placed vertices; ``matches`` is the
    expected embedding count entering this step.
    """
    label = context.labels[vertex]
    position = len(position_of)
    if position == 0:
        pool = float(catalog.frequency(label))
        candidates = pool
        survivors = pool
    else:
        back_labels = [
            context.labels[u]
            for u in context.adjacency[vertex]
            if u in position_of
        ]
        pool = min(catalog.anchor_degree(la) for la in back_labels)
        candidates = matches * pool
        survivors = matches * catalog.frequency(label)
        for la in back_labels:
            survivors *= catalog.closure_probability(la, label)
        survivors = min(survivors, candidates)
    for u, v in context.restriction_at:
        if u == vertex or v == vertex:
            other = v if u == vertex else u
            if other in position_of:
                survivors *= 0.5
    return pool, candidates, survivors


def estimate_order(
    pattern: Pattern, order: tuple[int, ...], catalog: GraphCatalog
) -> OrderEstimate:
    """Price one connected-prefix matching order against the catalog."""
    context = _PatternContext(pattern)
    position_of: dict[int, int] = {}
    matches = 0.0
    steps: list[StepEstimate] = []
    for position, vertex in enumerate(order):
        pool, candidates, survivors = _estimate_step(
            context, catalog, position_of, matches, vertex
        )
        steps.append(
            StepEstimate(
                position=position,
                pattern_vertex=vertex,
                pool=pool,
                candidates=candidates,
                matches=survivors,
            )
        )
        position_of[vertex] = position
        matches = survivors
    return OrderEstimate(order=tuple(order), steps=tuple(steps))


def connected_orders(pattern: Pattern) -> list[tuple[int, ...]]:
    """Every matching order with connected prefixes, lexicographic.

    Exponential in the worst case — callers gate on
    :data:`EXHAUSTIVE_VERTICES`.
    """
    n = pattern.num_vertices
    adjacency: list[set[int]] = [set() for _ in range(n)]
    for u, v, _ in pattern.edges:
        adjacency[u].add(v)
        adjacency[v].add(u)
    orders: list[tuple[int, ...]] = []
    order: list[int] = []
    placed: set[int] = set()

    def extend() -> None:
        if len(order) == n:
            orders.append(tuple(order))
            return
        for vertex in range(n):
            if vertex in placed:
                continue
            if order and not (adjacency[vertex] & placed):
                continue
            order.append(vertex)
            placed.add(vertex)
            extend()
            placed.discard(vertex)
            order.pop()

    extend()
    return orders


def _beam_orders(
    pattern: Pattern, catalog: GraphCatalog, width: int
) -> list[tuple[int, ...]]:
    """Greedy beam over connected-prefix orders, cheapest-first.

    Deterministic: states are ranked by (cost so far, expected
    embeddings, order tuple) at every level.
    """
    n = pattern.num_vertices
    context = _PatternContext(pattern)
    #: (total cost, matches, order tuple, position_of)
    states: list[tuple[float, float, tuple[int, ...], dict[int, int]]] = []
    for vertex in range(n):
        pool, candidates, survivors = _estimate_step(
            context, catalog, {}, 0.0, vertex
        )
        states.append((candidates, survivors, (vertex,), {vertex: 0}))
    states.sort(key=lambda s: (s[0], s[1], s[2]))
    states = states[:width]
    for _ in range(n - 1):
        frontier: list[tuple[float, float, tuple[int, ...], dict[int, int]]] = []
        for total, matches, order, position_of in states:
            for vertex in range(n):
                if vertex in position_of:
                    continue
                if not (context.adjacency[vertex] & position_of.keys()):
                    continue
                _, candidates, survivors = _estimate_step(
                    context, catalog, position_of, matches, vertex
                )
                frontier.append(
                    (
                        total + candidates,
                        survivors,
                        order + (vertex,),
                        {**position_of, vertex: len(order)},
                    )
                )
        frontier.sort(key=lambda s: (s[0], s[1], s[2]))
        states = frontier[:width]
    return [order for _, _, order, _ in states]


def candidate_orders(
    pattern: Pattern, catalog: GraphCatalog
) -> list[tuple[int, ...]]:
    """The orders the search will price: exhaustive for small patterns,
    beam beyond — always including the planner's heuristic order."""
    if pattern.num_vertices <= EXHAUSTIVE_VERTICES:
        orders = connected_orders(pattern)
    else:
        orders = _beam_orders(pattern, catalog, BEAM_WIDTH)
    heuristic = _matching_order(pattern)
    if heuristic not in orders:
        orders.append(heuristic)
    return orders


def choose_order(pattern: Pattern, catalog: GraphCatalog) -> OrderChoice:
    """Pick the cheapest matching order for ``pattern`` on this graph.

    The heuristic order wins every tie (within a tiny relative margin),
    so graphs whose statistics cannot separate orders — notably
    unlabeled graphs — keep the exact heuristic plan and its candidate
    stream.
    """
    heuristic_order = _matching_order(pattern)
    heuristic = estimate_order(pattern, heuristic_order, catalog)
    best = heuristic
    considered = 0
    for order in candidate_orders(pattern, catalog):
        considered += 1
        if order == heuristic_order:
            continue
        estimate = estimate_order(pattern, order, catalog)
        if estimate.total_candidates < best.total_candidates * (
            1.0 - _IMPROVEMENT_MARGIN
        ) or (
            best is not heuristic
            and estimate.total_candidates == best.total_candidates
            and estimate.order < best.order
        ):
            best = estimate
    if best is heuristic:
        reason = (
            "heuristic order is already cost-minimal among "
            f"{considered} considered orders"
            f" (~{heuristic.total_candidates:,.1f} candidates)"
        )
        return OrderChoice(
            pattern=pattern,
            chosen=heuristic,
            heuristic=heuristic,
            cost_based=False,
            reason=reason,
            considered=considered,
        )
    ratio = (
        heuristic.total_candidates / best.total_candidates
        if best.total_candidates > 0
        else float("inf")
    )
    reason = (
        f"cost model predicts ~{best.total_candidates:,.1f} candidates"
        f" vs ~{heuristic.total_candidates:,.1f} for the heuristic"
        f" ({ratio:,.1f}x fewer)"
    )
    return OrderChoice(
        pattern=pattern,
        chosen=best,
        heuristic=heuristic,
        cost_based=True,
        reason=reason,
        considered=considered,
    )
