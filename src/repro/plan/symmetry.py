"""Symmetry breaking for pattern matching plans.

A pattern with a non-trivial automorphism group is matched |Aut(P)| times
per occurrence when mappings are enumerated naively — the reason the
exhaustive engine needs its per-candidate canonicality check.  The guided
planner removes the redundancy *statically* instead: following Grochow &
Kellis (and the same construction used by Peregrine's pattern-aware plans),
it derives a set of **ordering restrictions** ``m(u) < m(v)`` on the graph
vertex ids assigned to pattern vertices ``u`` and ``v`` such that, of the
|Aut(P)| automorphic images of any one match, exactly one satisfies every
restriction.

The construction fixes one vertex of a non-trivial orbit per round and
recurses into its stabilizer:

1. pick the smallest pattern vertex ``v`` moved by the current group ``A``;
2. emit ``m(v) < m(u)`` for every other vertex ``u`` in ``v``'s orbit
   under ``A`` (forcing ``v``'s image to be the minimum over the orbit);
3. continue with the stabilizer ``A_v = {sigma in A : sigma(v) = v}``.

Soundness: for a fixed match ``m`` and its class ``{m ∘ sigma}``, round 1
keeps exactly the coset of the stabilizer that maps ``v`` onto the
minimum image (injectivity of ``m`` makes the minimum unique), and by
induction the recursion keeps exactly one element of that coset.  Hence

    (#matches satisfying the restrictions) * |Aut(P)| = #unrestricted matches

— the invariant ``tests/test_plan.py`` checks property-style on random
patterns, and the reason the guided engine can skip canonicality checks.

Automorphisms come from the individualization-refinement substrate
(:func:`repro.isomorphism.find_automorphisms`), the same machinery that
backs pattern canonicalization.
"""

from __future__ import annotations

from ..core.pattern import Pattern
from ..isomorphism import find_automorphisms


def pattern_automorphisms(pattern: Pattern) -> list[tuple[int, ...]]:
    """The automorphism group of a pattern as vertex permutations."""
    return find_automorphisms(
        pattern.num_vertices, pattern.vertex_labels, pattern.edge_dict()
    )


def symmetry_breaking_restrictions(
    pattern: Pattern,
) -> tuple[tuple[tuple[int, int], ...], int]:
    """Ordering restrictions pinning one mapping per automorphism class.

    Returns ``(restrictions, num_automorphisms)`` where each restriction
    ``(u, v)`` requires the graph vertex matched to pattern vertex ``u``
    to have a smaller id than the one matched to ``v``.  For rigid
    patterns (|Aut| = 1) the restriction set is empty.
    """
    group = pattern_automorphisms(pattern)
    num_automorphisms = len(group)
    restrictions: list[tuple[int, int]] = []
    current = group
    while len(current) > 1:
        moved = min(
            v
            for v in range(pattern.num_vertices)
            if any(sigma[v] != v for sigma in current)
        )
        orbit = sorted({sigma[moved] for sigma in current})
        for other in orbit:
            if other != moved:
                restrictions.append((moved, other))
        current = [sigma for sigma in current if sigma[moved] == moved]
    return tuple(restrictions), num_automorphisms


def satisfies_restrictions(
    mapping: tuple[int, ...], restrictions: tuple[tuple[int, int], ...]
) -> bool:
    """Whether a full ``pattern vertex -> graph vertex`` mapping passes.

    Used by the oracle-side of the cross-validation tests; the guided
    engine itself checks restrictions incrementally per plan step.
    """
    return all(mapping[u] < mapping[v] for u, v in restrictions)
