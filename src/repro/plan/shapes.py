"""Named query shapes and pattern files for the ``match`` CLI.

The CLI accepts either one of the named shapes below (unlabeled — their
vertices and edges carry the null label ``0``, matching graphs run through
:func:`repro.graph.strip_labels`) or a pattern edge-list file:

* ``u v [edge_label]`` lines declare edges (vertex ids ``0..k-1``);
* ``v <id> <label>`` lines optionally assign vertex labels;
* ``#`` starts a comment.
"""

from __future__ import annotations

from pathlib import Path
from typing import TextIO

from ..core.pattern import Pattern


def _shape(num_vertices: int, edges: list[tuple[int, int]]) -> Pattern:
    return Pattern(
        (0,) * num_vertices,
        tuple(sorted((min(u, v), max(u, v), 0) for u, v in edges)),
    )


#: Unlabeled query shapes addressable by name from the CLI.
NAMED_SHAPES: dict[str, Pattern] = {
    "edge": _shape(2, [(0, 1)]),
    "wedge": _shape(3, [(0, 1), (1, 2)]),
    "triangle": _shape(3, [(0, 1), (0, 2), (1, 2)]),
    "path3": _shape(4, [(0, 1), (1, 2), (2, 3)]),
    "star3": _shape(4, [(0, 1), (0, 2), (0, 3)]),
    "square": _shape(4, [(0, 1), (1, 2), (2, 3), (0, 3)]),
    "tailed-triangle": _shape(4, [(0, 1), (0, 2), (1, 2), (2, 3)]),
    "diamond": _shape(4, [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)]),
    "clique4": _shape(4, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]),
    "pentagon": _shape(5, [(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)]),
    # Square 0-1-2-3 with a roof vertex 4 over the 0-1 wall.
    "house": _shape(5, [(0, 1), (1, 2), (2, 3), (0, 3), (0, 4), (1, 4)]),
}


def read_pattern_file(source: str | Path | TextIO) -> Pattern:
    """Parse a pattern edge-list file into a :class:`Pattern`."""
    if hasattr(source, "read"):
        lines = source.read().splitlines()
    else:
        lines = Path(source).read_text(encoding="utf-8").splitlines()
    edges: dict[tuple[int, int], int] = {}
    vertex_labels: dict[int, int] = {}
    max_vertex = -1
    for lineno, raw in enumerate(lines, start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        fields = line.split()
        try:
            if fields[0] == "v":
                if len(fields) != 3:
                    raise ValueError("vertex lines are 'v <id> <label>'")
                vertex, label = int(fields[1]), int(fields[2])
                if vertex < 0:
                    raise ValueError(f"vertex id {vertex} is negative")
                if vertex in vertex_labels:
                    raise ValueError(f"duplicate label for vertex {vertex}")
                vertex_labels[vertex] = label
                max_vertex = max(max_vertex, vertex)
                continue
            if len(fields) not in (2, 3):
                raise ValueError("edge lines are 'u v [edge_label]'")
            u, v = int(fields[0]), int(fields[1])
            if u < 0 or v < 0:
                raise ValueError(f"vertex ids must be >= 0 (got {u}, {v})")
            label = int(fields[2]) if len(fields) == 3 else 0
        except ValueError as exc:
            raise ValueError(f"pattern file line {lineno}: {exc}") from exc
        if u == v:
            raise ValueError(f"pattern file line {lineno}: self-loop on {u}")
        key = (min(u, v), max(u, v))
        if key in edges:
            raise ValueError(f"pattern file line {lineno}: duplicate edge {key}")
        edges[key] = label
        max_vertex = max(max_vertex, u, v)
    if max_vertex < 0:
        raise ValueError("pattern file declares no vertices")
    referenced = set(vertex_labels)
    for u, v in edges:
        referenced.update((u, v))
    missing = sorted(set(range(max_vertex + 1)) - referenced)
    if missing:
        # Most often a 1-based file; phantom vertex 0 would otherwise
        # surface later as a misleading "disconnected pattern" error.
        raise ValueError(
            f"pattern vertex ids must be dense starting at 0; "
            f"ids {missing} are never referenced (1-based file?)"
        )
    labels = tuple(vertex_labels.get(v, 0) for v in range(max_vertex + 1))
    return Pattern(labels, tuple(sorted((u, v, l) for (u, v), l in edges.items())))


def resolve_query(spec: str) -> Pattern:
    """A named shape or a pattern-file path -> :class:`Pattern`.

    All failure modes — unknown name, directory, unreadable file,
    malformed contents — surface as :class:`ValueError` so callers (the
    ``match`` CLI) need a single handler.
    """
    if spec in NAMED_SHAPES:
        return NAMED_SHAPES[spec]
    path = Path(spec)
    if path.is_file():
        try:
            return read_pattern_file(path)
        except OSError as exc:
            raise ValueError(f"cannot read pattern file {spec!r}: {exc}") from exc
    raise ValueError(
        f"{spec!r} is neither a named shape "
        f"({', '.join(sorted(NAMED_SHAPES))}) nor a readable pattern file"
    )
