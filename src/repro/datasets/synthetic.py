"""Synthetic equivalents of the paper's six evaluation graphs (Table 1).

The paper's datasets are either too large for pure-Python enumeration
(MiCo, Patents, Youtube, Instagram), proprietary (SN), or both; per
DESIGN.md (substitution 2) each is replaced by a seeded generator matching
its label count, density, and degree-distribution family, with a ``scale``
knob.  CiteSeer is small enough to generate at full paper scale.

| graph      | paper V / E / labels / avg deg | family      | default scale |
|------------|--------------------------------|-------------|---------------|
| CiteSeer   | 3,312 / 4,732 / 6 / 2.8        | scale-free  | 1.0 (full)    |
| MiCo       | 100k / 1.08M / 29 / 21.6       | scale-free  | 0.03          |
| Patents    | 2.75M / 14.0M / 37 / 10        | scale-free  | 0.002         |
| Youtube    | 4.59M / 44.0M / 80 / 19        | scale-free  | 0.001         |
| SN         | 5.02M / 198.6M / - / 79        | near-regular| 0.0004        |
| Instagram  | 179.5M / 887.4M / - / 9.8      | scale-free  | 1/30000       |

SN additionally downscales its average degree (79 -> ~20): density is what
drives its embedding explosion, and a 2k-vertex graph at degree 79 would be
nearly complete, which changes the mining behaviour rather than preserving
it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..graph import LabeledGraph, assign_labels, random_regularish_graph


def scale_free_graph(
    num_vertices: int,
    num_edges: int,
    seed: int = 0,
    name: str = "scale-free",
) -> LabeledGraph:
    """Preferential attachment with a fractional edges-per-vertex rate.

    Hits ``num_edges`` (approximately: collisions are dropped) while keeping
    the heavy-tailed degree distribution of citation/social graphs — the
    property behind the paper's TLV hotspot findings.
    """
    if num_vertices < 2:
        raise ValueError("need at least 2 vertices")
    rng = random.Random(seed)
    edges: set[tuple[int, int]] = {(0, 1)}
    repeated: list[int] = [0, 1]
    placed = 2 * (num_edges - 1)
    rate = max(placed, 0) / max(num_vertices - 2, 1) / 2 if num_vertices > 2 else 0

    def attach(v: int, count: int) -> None:
        targets: set[int] = set()
        attempts = 0
        while len(targets) < count and attempts < 20 * count:
            attempts += 1
            u = rng.choice(repeated)
            if u != v:
                targets.add(u)
        for u in targets:
            key = (u, v) if u < v else (v, u)
            if key not in edges:
                edges.add(key)
                repeated.append(u)
                repeated.append(v)

    whole = int(rate)
    fraction = rate - whole
    for v in range(2, num_vertices):
        count = whole + (1 if rng.random() < fraction else 0)
        attach(v, max(count, 1))
    return LabeledGraph([0] * num_vertices, sorted(edges), name=name)


def citeseer_like(scale: float = 1.0, seed: int = 42) -> LabeledGraph:
    """CiteSeer: publications with CS-area labels, citation edges."""
    n = max(int(3312 * scale), 8)
    m = max(int(4732 * scale), 8)
    graph = scale_free_graph(n, m, seed=seed, name="citeseer-like")
    return assign_labels(graph, 6, seed=seed + 1, skew=0.6)


def mico_like(scale: float = 0.03, seed: int = 43) -> LabeledGraph:
    """MiCo: co-authorship with field-of-interest labels, dense core."""
    n = max(int(100_000 * scale), 16)
    m = max(int(1_080_298 * scale), 32)
    graph = scale_free_graph(n, m, seed=seed, name="mico-like")
    return assign_labels(graph, 29, seed=seed + 1, skew=0.7)


def patents_like(scale: float = 0.002, seed: int = 44) -> LabeledGraph:
    """Patents: citation network, grant-year labels (nearly uniform)."""
    n = max(int(2_745_761 * scale), 16)
    m = max(int(13_965_409 * scale), 32)
    graph = scale_free_graph(n, m, seed=seed, name="patents-like")
    return assign_labels(graph, 37, seed=seed + 1, skew=0.15)


def youtube_like(scale: float = 0.001, seed: int = 45) -> LabeledGraph:
    """Youtube: related-video graph, rating x length labels (skewed)."""
    n = max(int(4_589_876 * scale), 16)
    m = max(int(43_968_798 * scale), 32)
    graph = scale_free_graph(n, m, seed=seed, name="youtube-like")
    return assign_labels(graph, 80, seed=seed + 1, skew=0.8)


def sn_like(scale: float = 0.0004, seed: int = 46) -> LabeledGraph:
    """SN: dense unlabeled social network (degree downscaled with size)."""
    n = max(int(5_022_893 * scale), 32)
    degree = 20  # 79 at paper scale; see module docstring
    return random_regularish_graph(n, degree, seed=seed, name="sn-like")


def instagram_like(scale: float = 1 / 30_000, seed: int = 47) -> LabeledGraph:
    """Instagram: very large, sparse, unlabeled social network."""
    n = max(int(179_527_876 * scale), 32)
    m = max(int(887_390_802 * scale), 64)
    return scale_free_graph(n, m, seed=seed, name="instagram-like")


def skewed_label_graph(scale: float = 1.0, seed: int = 48) -> LabeledGraph:
    """Adversarial label-skew fixture for the cost-based planner.

    A scale-free "crowd" of frequent, high-degree label-0 vertices plus
    a small population of rare, degree-2 label-1 vertices hanging off
    hub-biased crowd endpoints.  A labeled query whose highest-degree
    pattern vertex carries the crowd label (e.g. a 1-0-1 wedge) defeats
    the pattern-only degree heuristic: it anchors the search at every
    crowd vertex and floods the candidate stream with crowd-crowd
    expansions, while the statistics catalog sees that the rare label's
    step-0 pool is ~15x smaller and anchors there instead.  The planner
    regression test and benchmark pin the resulting candidate gap.
    """
    rng = random.Random(seed)
    crowd = max(int(900 * scale), 30)
    rare = max(int(60 * scale), 6)
    base = scale_free_graph(crowd, crowd * 6, seed=seed, name="skewed-label")
    edges = [(u, v) for _, u, v in base.edge_iter()]
    # Hub-biased attachment: sampling edge endpoints picks a crowd vertex
    # proportionally to its degree, so rare vertices share crowd
    # neighbors often enough that 1-0-1 wedges actually occur.
    endpoints = [w for edge in edges for w in edge]
    for i in range(rare):
        v = crowd + i
        targets: set[int] = set()
        while len(targets) < 2:
            targets.add(rng.choice(endpoints))
        edges.extend((u, v) for u in sorted(targets))
    labels = [0] * crowd + [1] * rare
    return LabeledGraph(labels, sorted(edges), name="skewed-label")


#: Registry used by the benchmark harnesses.
DATASETS = {
    "citeseer": citeseer_like,
    "mico": mico_like,
    "patents": patents_like,
    "youtube": youtube_like,
    "sn": sn_like,
    "instagram": instagram_like,
    "skewed": skewed_label_graph,
}


@dataclass(frozen=True)
class DatasetStatistics:
    """One Table 1 row."""

    name: str
    vertices: int
    edges: int
    labels: int
    average_degree: float

    def row(self) -> str:
        labels = str(self.labels) if self.labels > 1 else "-"
        return (
            f"{self.name:<16} {self.vertices:>9,} {self.edges:>11,} "
            f"{labels:>6} {self.average_degree:>8.1f}"
        )


def dataset_statistics(graph: LabeledGraph) -> DatasetStatistics:
    """Compute the Table 1 row of a graph."""
    return DatasetStatistics(
        name=graph.name,
        vertices=graph.num_vertices,
        edges=graph.num_edges,
        labels=graph.num_vertex_labels,
        average_degree=graph.average_degree(),
    )


#: The paper's Table 1, for paper-vs-measured reporting.
PAPER_TABLE1 = {
    "citeseer": DatasetStatistics("CiteSeer", 3_312, 4_732, 6, 2.8),
    "mico": DatasetStatistics("MiCo", 100_000, 1_080_298, 29, 21.6),
    "patents": DatasetStatistics("Patents", 2_745_761, 13_965_409, 37, 10.0),
    "youtube": DatasetStatistics("Youtube", 4_589_876, 43_968_798, 80, 19.0),
    "sn": DatasetStatistics("SN", 5_022_893, 198_613_776, 0, 79.0),
    "instagram": DatasetStatistics("Instagram", 179_527_876, 887_390_802, 0, 9.8),
}
