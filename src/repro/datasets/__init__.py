"""Synthetic stand-ins for the paper's evaluation datasets."""

from .synthetic import (
    DATASETS,
    PAPER_TABLE1,
    DatasetStatistics,
    citeseer_like,
    dataset_statistics,
    instagram_like,
    mico_like,
    patents_like,
    scale_free_graph,
    sn_like,
    youtube_like,
)

__all__ = [
    "DATASETS",
    "DatasetStatistics",
    "PAPER_TABLE1",
    "citeseer_like",
    "dataset_statistics",
    "instagram_like",
    "mico_like",
    "patents_like",
    "scale_free_graph",
    "sn_like",
    "youtube_like",
]
