"""Synthetic stand-ins for the paper's evaluation datasets.

Besides the generator registry (:data:`DATASETS`), this package owns the
one named-lookup path every front door shares: :func:`load` resolves a
dataset *name* (optionally rescaled) with a loud error listing the
available names, and :func:`resolve` additionally accepts an edge-list
file path — the CLI and the query service registry both go through
these instead of hand-rolling name/path dispatch.
"""

from __future__ import annotations

from pathlib import Path

from ..graph import LabeledGraph, read_edge_list
from .synthetic import (
    DATASETS,
    PAPER_TABLE1,
    DatasetStatistics,
    citeseer_like,
    dataset_statistics,
    instagram_like,
    mico_like,
    patents_like,
    scale_free_graph,
    skewed_label_graph,
    sn_like,
    youtube_like,
)


class UnknownDatasetError(ValueError):
    """A dataset name (or graph spec) did not resolve to a graph."""


def load(name: str, *, scale: float | None = None) -> LabeledGraph:
    """Build the named built-in dataset, optionally rescaled.

    The loud-error twin of ``DATASETS[name]()``: an unknown name raises
    :class:`UnknownDatasetError` listing every available name instead of
    a bare ``KeyError``.
    """
    factory = DATASETS.get(name)
    if factory is None:
        raise UnknownDatasetError(
            f"unknown dataset {name!r} — available datasets: "
            f"{', '.join(sorted(DATASETS))}"
        )
    return factory(scale=scale) if scale is not None else factory()


def resolve(spec: str, *, scale: float | None = None) -> LabeledGraph:
    """A dataset name or an edge-list file path -> :class:`LabeledGraph`.

    Names win over paths (the built-ins shadow any same-named file);
    ``scale`` only applies to built-ins and is rejected for files, where
    it would silently do nothing.  Every failure mode — unknown name,
    missing file, unreadable contents — surfaces as a
    :class:`UnknownDatasetError` (a ``ValueError``) so callers need one
    handler.
    """
    if spec in DATASETS:
        return load(spec, scale=scale)
    path = Path(spec)
    if path.is_file():
        if scale is not None:
            raise UnknownDatasetError(
                f"scale={scale} only applies to the built-in datasets "
                f"({', '.join(sorted(DATASETS))}); {spec!r} is a file"
            )
        try:
            return read_edge_list(path, name=path.stem)
        except OSError as exc:
            raise UnknownDatasetError(
                f"cannot read edge-list file {spec!r}: {exc}"
            ) from exc
    raise UnknownDatasetError(
        f"{spec!r} is neither a built-in dataset "
        f"({', '.join(sorted(DATASETS))}) nor a readable edge-list file"
    )


__all__ = [
    "DATASETS",
    "DatasetStatistics",
    "PAPER_TABLE1",
    "UnknownDatasetError",
    "citeseer_like",
    "dataset_statistics",
    "instagram_like",
    "load",
    "mico_like",
    "patents_like",
    "resolve",
    "scale_free_graph",
    "skewed_label_graph",
    "sn_like",
    "youtube_like",
]
