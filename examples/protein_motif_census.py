#!/usr/bin/env python
"""Motif census for a protein-interaction-style network.

The paper motivates motif mining with bioinformatics: "extracting network
motifs or significant subgraphs from protein-protein or gene interaction
networks" (section 1).  The standard workflow (Przulj's graphlet analysis,
reference [30]) compares the motif frequency distribution of a real network
against a degree-matched random null model: motifs strongly over- or
under-represented versus the null are candidate functional building blocks.

This example runs that workflow end to end on a synthetic PPI-like network:

1. build a scale-free "interactome";
2. census all 3- and 4-vertex motifs with the Arabesque engine;
3. census a degree-preserving random rewiring (the null model);
4. report per-motif enrichment z-scores-style ratios.
"""

import random

from repro.datasets import scale_free_graph
from repro.graph import LabeledGraph
from repro.session import Miner


def rewire(graph: LabeledGraph, seed: int = 0, passes: int = 10) -> LabeledGraph:
    """Degree-preserving double-edge-swap randomization (the null model)."""
    rng = random.Random(seed)
    edges = [graph.edge_endpoints(eid) for eid in graph.edges()]
    edge_set = {tuple(sorted(e)) for e in edges}
    swaps = passes * len(edges)
    for _ in range(swaps):
        (a, b), (c, d) = rng.sample(edges, 2)
        # Propose swapping partners: (a,d) and (c,b).
        if len({a, b, c, d}) < 4:
            continue
        new1 = tuple(sorted((a, d)))
        new2 = tuple(sorted((c, b)))
        if new1 in edge_set or new2 in edge_set:
            continue
        edge_set.discard(tuple(sorted((a, b))))
        edge_set.discard(tuple(sorted((c, d))))
        edge_set.add(new1)
        edge_set.add(new2)
        edges = list(edge_set)
    return LabeledGraph(
        [0] * graph.num_vertices, sorted(edge_set), name=f"{graph.name}-rewired"
    )


def shape_name(pattern) -> str:
    """Human name for the small unlabeled motif shapes."""
    names = {
        (3, 2): "path P3",
        (3, 3): "triangle",
        (4, 3): "path P4 / claw",
        (4, 4): "cycle C4 / paw",
        (4, 5): "diamond",
        (4, 6): "clique K4",
    }
    key = (pattern.num_vertices, pattern.num_edges)
    # Disambiguate the 3-edge and 4-edge shapes by degree sequence.
    degrees = [0] * pattern.num_vertices
    for i, j, _ in pattern.edges:
        degrees[i] += 1
        degrees[j] += 1
    degree_seq = tuple(sorted(degrees))
    if key == (4, 3):
        return "claw (star)" if degree_seq == (1, 1, 1, 3) else "path P4"
    if key == (4, 4):
        return "cycle C4" if degree_seq == (2, 2, 2, 2) else "paw"
    return names.get(key, f"{key[0]}v/{key[1]}e")


def census(graph: LabeledGraph) -> dict:
    result = Miner(graph).motifs(max_size=4).collect(False).run()
    merged = {}
    for size, counts in result.by_size().items():
        merged.update(counts)
    return merged


def main() -> None:
    interactome = scale_free_graph(400, 1200, seed=11, name="ppi-like")
    print(f"interactome: {interactome.num_vertices} proteins, "
          f"{interactome.num_edges} interactions")

    real = census(interactome)
    null = census(rewire(interactome, seed=12))

    print(f"\n{'motif':<14} {'observed':>9} {'null':>9} {'enrichment':>10}")
    for pattern in sorted(real, key=lambda p: (p.num_vertices, p.num_edges)):
        observed = real[pattern]
        expected = null.get(pattern, 0)
        if expected:
            enrichment = f"{observed / expected:9.2f}x"
        else:
            enrichment = "    novel"
        print(f"{shape_name(pattern):<14} {observed:>9,} {expected:>9,} {enrichment:>10}")

    print(
        "\nDensely clustered motifs (triangle, diamond, K4) enriched above"
        "\nthe degree-matched null indicate modular structure — exactly the"
        "\nsignal graphlet analysis uses to find protein complexes."
    )


if __name__ == "__main__":
    main()
