#!/usr/bin/env python
"""Dense-community detection in a social network via clique mining.

The paper lists "dense subgraph mining for community and link spam
detection in web data" among its motivating applications (section 1).  A
classic technique is clique percolation: communities are unions of
adjacent k-cliques (cliques sharing k-1 vertices).  This example

1. builds a social network with planted communities,
2. enumerates all triangles and 4-cliques with the Arabesque engine,
3. runs clique percolation on the 4-cliques, and
4. checks the recovered communities against the planted ones.

It also demonstrates distributed-execution introspection: the same mining
job is "run" at several worker counts and the simulated makespans printed.
"""

import itertools
import random

from repro.graph import GraphBuilder
from repro.session import Miner


def planted_communities(
    num_communities: int = 6,
    size: int = 12,
    p_in: float = 0.6,
    p_out: float = 0.01,
    seed: int = 3,
):
    """A planted-partition graph: dense blocks, sparse background."""
    rng = random.Random(seed)
    builder = GraphBuilder()
    # GraphBuilder addresses vertices by *key*: use (community, index) keys
    # for edges and record the dense ids for the ground truth.
    members = {}
    keys = []
    for community in range(num_communities):
        for index in range(size):
            key = (community, index)
            vid = builder.add_vertex(key, 0)
            members.setdefault(community, set()).add(vid)
            keys.append(key)
    for ku, kv in itertools.combinations(keys, 2):
        same = ku[0] == kv[0]
        if rng.random() < (p_in if same else p_out):
            builder.add_edge(ku, kv)
    return builder.build(name="social-planted"), members


def clique_percolation(cliques: list[tuple[int, ...]], k: int) -> list[set[int]]:
    """Union k-cliques that share k-1 vertices into communities."""
    parent = list(range(len(cliques)))

    def find(x):
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    by_face: dict[frozenset[int], list[int]] = {}
    for index, clique in enumerate(cliques):
        for face in itertools.combinations(clique, k - 1):
            by_face.setdefault(frozenset(face), []).append(index)
    for indices in by_face.values():
        for a, b in zip(indices, indices[1:]):
            ra, rb = find(a), find(b)
            if ra != rb:
                parent[ra] = rb
    groups: dict[int, set[int]] = {}
    for index, clique in enumerate(cliques):
        groups.setdefault(find(index), set()).update(clique)
    return sorted(groups.values(), key=len, reverse=True)


def main() -> None:
    graph, planted = planted_communities()
    print(f"network: {graph.num_vertices} people, {graph.num_edges} ties, "
          f"{len(planted)} planted communities")

    # One session for the whole analysis: the worker-count sweep below
    # reuses the session's cached step-0 state instead of re-deriving it.
    miner = Miner(graph)
    by_size = miner.cliques(max_size=4, min_size=3).run().by_size()
    print(f"triangles: {len(by_size.get(3, [])):,}   "
          f"4-cliques: {len(by_size.get(4, [])):,}")

    communities = clique_percolation(by_size.get(4, []), k=4)
    print(f"\nclique-percolation communities (k=4): {len(communities)}")
    recovered = 0
    for community in communities:
        best = max(
            planted.values(),
            key=lambda vs: len(community & vs) / len(vs | community),
        )
        jaccard = len(community & best) / len(community | best)
        if jaccard > 0.5:
            recovered += 1
        print(f"  {len(community):>3} members, best-match Jaccard {jaccard:.2f}")
    print(f"recovered {recovered}/{len(planted)} planted communities")

    print("\nsimulated distributed execution of the same mining job:")
    for workers in (1, 4, 16):
        run = (
            miner.cliques(max_size=4, min_size=3)
            .workers(workers).collect(False).run()
        )
        print(f"  {workers:>2} workers: simulated makespan "
              f"{run.makespan():.4f}s, "
              f"{run.raw.metrics.total_messages:,} messages")


if __name__ == "__main__":
    main()
