#!/usr/bin/env python
"""Quickstart: the HTTP query service, end to end in one process.

Boots the real asyncio server (`repro.service`) on an ephemeral port
with one pooled graph, then walks the serving story over actual HTTP:

1. run a motif query cold (engine run) and again warm (whole-result
   cache hit — same bytes, no recompilation);
2. show that an equivalent spelling of a match query ("triangle" vs its
   explicit edge list) lands on the same cache entry;
3. trip an embedding budget on purpose and read the structured 422;
4. print the server's cache/admission counters.

See docs/service.md for the full endpoint and semantics reference.
"""

import json
import urllib.error
import urllib.request

from repro.service import MinerRegistry, QueryService, start_in_background


def post(url: str, body: dict) -> tuple[int, dict]:
    request = urllib.request.Request(
        url, data=json.dumps(body).encode(), method="POST"
    )
    try:
        with urllib.request.urlopen(request, timeout=120) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def main() -> None:
    registry = MinerRegistry()
    registry.load_dataset("citeseer", scale=0.1)
    service = QueryService(registry, max_concurrent=2)
    handle = start_in_background(service)  # ephemeral port, background thread
    print(f"service up at {handle.url}, graphs: {registry.names()}")

    try:
        # 1. cold, then warm
        motifs = {"graph": "citeseer", "max_size": 3}
        status, cold = post(handle.url + "/motifs", motifs)
        assert status == 200
        print(
            f"cold motifs : {cold['elapsed_ms']:8.1f} ms  "
            f"cache_hit={cold['cache']['hit']}  "
            f"motifs={cold['result']['num_motifs']}"
        )
        status, warm = post(handle.url + "/motifs", motifs)
        assert status == 200 and warm["cache"]["hit"]
        assert warm["result"] == cold["result"]
        print(
            f"warm motifs : {warm['elapsed_ms']:8.1f} ms  "
            f"cache_hit={warm['cache']['hit']}  (same bytes)"
        )

        # 2. canonical cache keys: two spellings, one entry
        status, named = post(
            handle.url + "/match", {"graph": "citeseer", "query": "triangle"}
        )
        assert status == 200
        status, spelled = post(
            handle.url + "/match",
            {"graph": "citeseer", "query": {"edges": [[1, 2], [0, 2], [0, 1]]}},
        )
        assert status == 200 and spelled["cache"]["hit"]
        print(
            f"'triangle' and its explicit edge list share one cache entry "
            f"({named['result']['num_matches']} matches)"
        )

        # 3. a budget-busted query fails fast with a structured 422
        status, busted = post(
            handle.url + "/motifs",
            {"graph": "citeseer", "max_size": 4, "max_embeddings": 10},
        )
        assert status == 422
        error = busted["error"]
        print(
            f"budget trip : 422 {error['kind']} budget, "
            f"limit={error['limit']} spent={error['spent']:,}"
        )

        # 4. the counters behind all of the above
        with urllib.request.urlopen(handle.url + "/stats", timeout=30) as r:
            stats = json.loads(r.read())
        print(f"server      : {stats['server']}")
        print(f"result cache: {stats['registry']}")
    finally:
        handle.stop()
    print("service stopped")


if __name__ == "__main__":
    main()
