#!/usr/bin/env python
"""Frequent subgraph mining over an RDF-style typed graph.

The paper lists "mining attributed patterns over semantic data (e.g., in
Resource Description Framework or RDF format)" among the motivating
applications (section 1).  An RDF dataset is naturally a labeled graph:
resources carry a class (the vertex label) and triples carry a predicate
(the edge label).  Frequent labeled subgraphs are schema-level association
patterns — "papers written by authors affiliated with an institution", etc.

This example builds a synthetic academic knowledge graph with typed
vertices (author, paper, venue, institution) and typed edges (writes,
published-at, affiliated-with, cites), mines the frequent patterns with the
edge-label-aware FSM application, and prints them as readable triples.
"""

import random

from repro.graph import GraphBuilder
from repro.session import Miner

# Vertex classes.
AUTHOR, PAPER, VENUE, INSTITUTION = range(4)
CLASS_NAMES = {AUTHOR: "Author", PAPER: "Paper", VENUE: "Venue",
               INSTITUTION: "Institution"}
# Edge predicates.
WRITES, PUBLISHED_AT, AFFILIATED, CITES = range(4)
PREDICATE_NAMES = {WRITES: "writes", PUBLISHED_AT: "publishedAt",
                   AFFILIATED: "affiliatedWith", CITES: "cites"}


def build_knowledge_graph(seed: int = 7):
    """A small academic knowledge graph with realistic shape."""
    rng = random.Random(seed)
    builder = GraphBuilder()
    num_institutions, num_venues = 8, 12
    num_authors, num_papers = 150, 250

    # GraphBuilder addresses vertices by *key*; keep the keys around.
    institutions = [("inst", i) for i in range(num_institutions)]
    venues = [("venue", i) for i in range(num_venues)]
    authors = [("auth", i) for i in range(num_authors)]
    papers = [("paper", i) for i in range(num_papers)]
    for key in institutions:
        builder.add_vertex(key, INSTITUTION)
    for key in venues:
        builder.add_vertex(key, VENUE)
    for key in authors:
        builder.add_vertex(key, AUTHOR)
    for key in papers:
        builder.add_vertex(key, PAPER)

    for author in authors:
        builder.add_edge(author, rng.choice(institutions), AFFILIATED)
    for paper in papers:
        for author in rng.sample(authors, rng.randint(1, 3)):
            builder.add_edge(author, paper, WRITES)
        builder.add_edge(paper, rng.choice(venues), PUBLISHED_AT)
    for paper in papers:
        for cited in rng.sample(papers, rng.randint(0, 4)):
            if cited != paper:
                builder.add_edge(paper, cited, CITES)
    return builder.build(name="academic-kg")


def render_pattern(pattern) -> list[str]:
    """Render a labeled pattern as pseudo-RDF triples."""
    variables = {}
    for position, label in enumerate(pattern.vertex_labels):
        variables[position] = f"?{CLASS_NAMES[label].lower()}{position}"
    lines = [
        f"  {variables[i]} --{PREDICATE_NAMES[edge_label]}--> {variables[j]}"
        for i, j, edge_label in pattern.edges
    ]
    types = ", ".join(
        f"{variables[p]}:{CLASS_NAMES[label]}"
        for p, label in enumerate(pattern.vertex_labels)
    )
    return [f"  ({types})"] + lines


def main() -> None:
    graph = build_knowledge_graph()
    print(f"knowledge graph: {graph.num_vertices} resources, "
          f"{graph.num_edges} triples")

    threshold = 40
    result = (
        Miner(graph).fsm(threshold, max_edges=3).collect(False).run()
    )
    frequent = result.patterns()

    print(f"\nfrequent schema patterns (MNI support >= {threshold}):\n")
    for pattern, support in sorted(
        frequent.items(), key=lambda kv: (kv[0].num_edges, -kv[1])
    ):
        print(f"support {support}:")
        for line in render_pattern(pattern):
            print(line)
        print()

    print("Each pattern is a frequent typed-join shape; in an RDF store")
    print("these would become candidate materialized views / query indexes.")


if __name__ == "__main__":
    main()
