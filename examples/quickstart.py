#!/usr/bin/env python
"""Quickstart: mine a small graph through the `Miner` session facade.

One `Miner` session over the CiteSeer-scale synthetic dataset runs all
four bundled workloads — motif counting, clique finding, frequent
subgraph mining, and pattern matching — and prints the headline numbers
of each: a two-minute tour of the public API.

Usage::

    python examples/quickstart.py
"""

from repro.datasets import citeseer_like
from repro.session import Miner


def describe_pattern(pattern) -> str:
    """Compact one-line rendering of a pattern."""
    edges = ", ".join(f"{i}-{j}" for i, j, _ in pattern.edges)
    return f"{pattern.num_vertices} vertices, edges [{edges}]"


def main() -> None:
    graph = citeseer_like()
    print(f"dataset: {graph.name} — {graph.num_vertices:,} vertices, "
          f"{graph.num_edges:,} edges, {graph.num_vertex_labels} labels")

    # One session per graph: repeated queries share cached step-0 state,
    # the stripped graph variant, and compiled matching plans.
    miner = Miner(graph)

    # ------------------------------------------------------------------
    # 1. Motif counting (vertex-based exhaustive exploration, unlabeled).
    # ------------------------------------------------------------------
    print("\n== motifs up to 3 vertices ==")
    motifs = miner.motifs(max_size=3).unlabeled().run()
    for pattern, count in sorted(
        motifs.counts().items(), key=lambda kv: -kv[1]
    ):
        print(f"  {describe_pattern(pattern):<40} x {count:,}")

    # ------------------------------------------------------------------
    # 2. Clique finding (vertex-based with local pruning).
    # ------------------------------------------------------------------
    print("\n== cliques up to 4 vertices ==")
    cliques = miner.cliques(max_size=4, min_size=3).unlabeled().run()
    for size, found in sorted(cliques.by_size().items()):
        print(f"  size {size}: {len(found):,} cliques "
              f"(e.g. {found[0] if found else '-'})")

    # ------------------------------------------------------------------
    # 3. Pattern matching (plan-guided by default; .exhaustive() opts out).
    # ------------------------------------------------------------------
    print("\n== every square, via the guided planner ==")
    squares = miner.match("square").unlabeled().run()
    print(f"  plan: {squares.plan.describe()}")
    print(f"  {squares.num_matches:,} squares from "
          f"{squares.total_candidates:,} candidates")

    # ------------------------------------------------------------------
    # 4. Frequent subgraph mining (edge-based with MNI support).
    # ------------------------------------------------------------------
    print("\n== frequent subgraphs (support >= 200, up to 3 edges) ==")
    fsm = miner.fsm(200, max_edges=3).collect(False).run()
    for pattern, support in sorted(
        fsm.patterns().items(), key=lambda kv: -kv[1]
    ):
        labels = "/".join(map(str, pattern.vertex_labels))
        print(f"  {describe_pattern(pattern):<40} labels {labels:<8} "
              f"support {support}")

    # ------------------------------------------------------------------
    # Every result view keeps the engine's full record as `.raw`.
    # ------------------------------------------------------------------
    print("\n== run statistics (FSM run above) ==")
    raw = fsm.raw
    print(f"  exploration steps:     {raw.num_steps}")
    print(f"  candidates generated:  {raw.total_candidates:,}")
    print(f"  embeddings processed:  {raw.total_processed:,}")
    print(f"  quick patterns seen:   {raw.quick_patterns}")
    print(f"  canonical patterns:    {raw.canonical_patterns}")
    print(f"  simulated makespan:    {raw.makespan():.3f}s "
          f"(1 worker; chain .workers(n) to partition)")
    info = miner.cache_info()
    print(f"  session cache:         {info.runs} runs, "
          f"{info.universe_builds} universe builds "
          f"({info.universe_hits} hits), "
          f"{info.plan_compilations} plan compilations")


if __name__ == "__main__":
    main()
