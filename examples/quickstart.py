#!/usr/bin/env python
"""Quickstart: mine a small graph with all three bundled applications.

Runs motif counting, clique finding, and frequent subgraph mining on the
CiteSeer-scale synthetic dataset and prints the headline numbers of each —
a two-minute tour of the public API.

Usage::

    python examples/quickstart.py
"""

from repro import ArabesqueConfig, run_computation
from repro.apps import (
    CliqueFinding,
    FrequentSubgraphMining,
    MotifCounting,
    cliques_by_size,
    frequent_patterns,
    motif_counts,
)
from repro.datasets import citeseer_like
from repro.graph import strip_labels


def describe_pattern(pattern) -> str:
    """Compact one-line rendering of a pattern."""
    edges = ", ".join(f"{i}-{j}" for i, j, _ in pattern.edges)
    return f"{pattern.num_vertices} vertices, edges [{edges}]"


def main() -> None:
    graph = citeseer_like()
    print(f"dataset: {graph.name} — {graph.num_vertices:,} vertices, "
          f"{graph.num_edges:,} edges, {graph.num_vertex_labels} labels")

    # ------------------------------------------------------------------
    # 1. Motif counting (vertex-based exhaustive exploration, unlabeled).
    # ------------------------------------------------------------------
    print("\n== motifs up to 3 vertices ==")
    result = run_computation(strip_labels(graph), MotifCounting(max_size=3))
    for pattern, count in sorted(
        motif_counts(result).items(), key=lambda kv: -kv[1]
    ):
        print(f"  {describe_pattern(pattern):<40} x {count:,}")

    # ------------------------------------------------------------------
    # 2. Clique finding (vertex-based with local pruning).
    # ------------------------------------------------------------------
    print("\n== cliques up to 4 vertices ==")
    result = run_computation(
        strip_labels(graph), CliqueFinding(max_size=4, min_size=3)
    )
    for size, cliques in sorted(cliques_by_size(result).items()):
        print(f"  size {size}: {len(cliques):,} cliques "
              f"(e.g. {cliques[0] if cliques else '-'})")

    # ------------------------------------------------------------------
    # 3. Frequent subgraph mining (edge-based with MNI support).
    # ------------------------------------------------------------------
    print("\n== frequent subgraphs (support >= 200, up to 3 edges) ==")
    config = ArabesqueConfig(collect_outputs=False)  # only patterns needed
    result = run_computation(
        graph, FrequentSubgraphMining(support_threshold=200, max_edges=3), config
    )
    for pattern, support in sorted(
        frequent_patterns(result, 200).items(), key=lambda kv: -kv[1]
    ):
        labels = "/".join(map(str, pattern.vertex_labels))
        print(f"  {describe_pattern(pattern):<40} labels {labels:<8} "
              f"support {support}")

    # ------------------------------------------------------------------
    # The engine reports distribution metrics for every run.
    # ------------------------------------------------------------------
    print("\n== run statistics (FSM run above) ==")
    print(f"  exploration steps:     {result.num_steps}")
    print(f"  candidates generated:  {result.total_candidates:,}")
    print(f"  embeddings processed:  {result.total_processed:,}")
    print(f"  quick patterns seen:   {result.quick_patterns}")
    print(f"  canonical patterns:    {result.canonical_patterns}")
    print(f"  simulated makespan:    {result.makespan():.3f}s "
          f"(1 worker; see ArabesqueConfig.num_workers)")


if __name__ == "__main__":
    main()
