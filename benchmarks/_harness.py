"""Shared helpers for the benchmark suite.

Every bench regenerates one of the paper's tables or figures.  Results are
printed and also written to ``benchmarks/results/<name>.txt`` so they
survive pytest's output capture; EXPERIMENTS.md records the paper-vs-
measured comparison for each experiment.

The workloads run on the synthetic datasets of :mod:`repro.datasets` at
scales calibrated to keep each bench in the seconds range (the paper's own
parameters — e.g. FSM support thresholds — are rescaled alongside the
graphs; the *shape* of each result is the reproduction target, per
DESIGN.md).

Micro-benchmark note — step-0 universe caching: the engine materializes
``initial_candidates(graph, mode)`` once per run (``ArabesqueEngine.
_initial_universe``) instead of per worker pass.  For the in-memory
``LabeledGraph`` the candidate set is a ``range``, so the old per-worker
rebuild cost O(1) and the measured win on Motifs-MiCo (scale 0.02,
32 workers) is under 1 ms — the caching matters structurally, not for
these benches: the step-0 :class:`~repro.runtime.tasks.StepContext` now
carries one shared tuple, so the process backend ships/inherits the
universe once per step instead of regenerating it per task, and any future
graph whose candidate enumeration is *not* O(1) (disk-backed or filtered
universes) is automatically amortized across workers and backends.
"""

from __future__ import annotations

import json
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def report(name: str, title: str, lines: list[str]) -> str:
    """Print a result block and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    body = "\n".join([f"== {title} ==", *lines, ""])
    print("\n" + body)
    (RESULTS_DIR / f"{name}.txt").write_text(body, encoding="utf-8")
    return body


def report_json(name: str, payload: dict) -> Path:
    """Persist a machine-readable result under benchmarks/results/.

    Written alongside the human-readable ``report`` block so CI (and any
    regression tooling) can assert on exact numbers instead of parsing
    the text table.  Keys are sorted for stable diffs.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return path


def fmt_count(value: float) -> str:
    """Human-scale count formatting (1234567 -> '1.23e+06')."""
    if value >= 1_000_000:
        return f"{value:.2e}"
    return f"{int(value):,}"
