"""Table 2: single-thread Arabesque vs centralized baselines.

The paper shows that one Arabesque worker is competitive with the dedicated
centralized implementations (G-Tries for motifs, Mace for cliques), with
GRAMI ahead only because it solves a simpler problem (frequent *patterns*,
not embeddings) — the gap closes when VFLib must enumerate the embeddings.

Here both sides are Python, so the *ratios* are the reproducible part:
Arabesque-on-one-worker should be within a small factor of the baseline
for motifs/cliques, and GRAMI-without-embedding-listing should beat the
Arabesque FSM that materializes every embedding.
"""

import time

from repro.apps import CliqueFinding, FrequentSubgraphMining, MotifCounting
from repro.baselines import (
    count_cliques_by_size,
    count_motifs_up_to,
    find_frequent_embeddings,
    run_grami,
)
from repro.core import ArabesqueConfig, run_computation
from repro.datasets import citeseer_like, mico_like
from repro.graph import strip_labels

from _harness import report


def timed(fn):
    started = time.perf_counter()
    value = fn()
    return time.perf_counter() - started, value


def test_table2_single_thread_comparison(benchmark):
    mico = strip_labels(mico_like(scale=0.008))
    citeseer = citeseer_like()
    config = ArabesqueConfig(num_workers=1, collect_outputs=False)
    rows = []

    def run_all():
        # Motifs MS=3 on MiCo: G-Tries substitute (ESU) vs Arabesque.
        base_t, base_counts = timed(lambda: count_motifs_up_to(mico, 3))
        ara_t, ara_result = timed(
            lambda: run_computation(mico, MotifCounting(3), config)
        )
        rows.append(("Motifs (MS=3)", "ESU/G-Tries", base_t, ara_t))

        # Cliques MS=4 on MiCo: Mace substitute vs Arabesque.
        base_t, _ = timed(lambda: count_cliques_by_size(mico, max_size=4))
        ara_t, _ = timed(
            lambda: run_computation(mico, CliqueFinding(max_size=4), config)
        )
        rows.append(("Cliques (MS=4)", "BK/Mace", base_t, ara_t))

        # FSM S=100 on CiteSeer: GRAMI (patterns only) + VFLib (embeddings).
        grami_t, grami = timed(lambda: run_grami(citeseer, 100, max_edges=3))
        vflib_t, _ = timed(lambda: find_frequent_embeddings(citeseer, grami.frequent))
        ara_t, _ = timed(
            lambda: run_computation(
                citeseer, FrequentSubgraphMining(100, max_edges=3), config
            )
        )
        rows.append(("FSM (S=100)", "GRAMI", grami_t, ara_t))
        rows.append(("FSM (S=100)", "GRAMI+VFLib", grami_t + vflib_t, ara_t))
        return rows

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = [f"{'application':<16} {'baseline':<12} {'baseline s':>10} {'arabesque s':>11} {'ratio':>6}"]
    for app, base_name, base_t, ara_t in rows:
        ratio = ara_t / base_t if base_t > 0 else float("inf")
        lines.append(
            f"{app:<16} {base_name:<12} {base_t:>10.2f} {ara_t:>11.2f} {ratio:>6.1f}"
        )
    lines += [
        "",
        "paper (Table 2): Motifs 50s vs 37s; Cliques 281s vs 385s;",
        "  FSM: GRAMI 3s vs 5s, GRAMI+VFLib 4.8s vs 5s (embeddings close the gap).",
        "",
        "note: our clique baseline is a ~30-ops/clique ordered-extension loop",
        "  while the engine pays full generic-machinery cost per embedding;",
        "  in the paper both sides are optimized native code, so the clique",
        "  ratio here overstates the gap (motifs and FSM are representative).",
    ]
    report("table2", "Table 2: single-thread vs centralized baselines", lines)

    # Shape assertions: Arabesque within a small factor of the dedicated
    # enumerators for motifs (the paper shows ~1x) and FSM; the generic
    # engine never wins against the specialized clique lister but stays
    # within a bounded factor.
    motifs_row = rows[0]
    assert motifs_row[3] < 10 * motifs_row[2]
    cliques_row = rows[1]
    assert cliques_row[3] < 500 * cliques_row[2]
    grami_only = rows[2]
    grami_vflib = rows[3]
    assert grami_vflib[2] >= grami_only[2]
    fsm_row = rows[3]
    assert fsm_row[3] < 50 * fsm_row[2]
