"""Figure 12: CPU utilization breakdown during the penultimate superstep.

The paper instruments one superstep and attributes CPU to five phases:
W (writing embeddings: ODAG creation/serialization/transfer), R (reading:
ODAG extraction), G (generating candidates), C (embedding canonicality),
P (pattern aggregation).  Findings: storing/sharing/extracting embeddings
dominates (W ~25-50%), user functions are negligible, and Cliques skips P.

With ``profile_phases`` the engine wall-clock-stamps the same five phases.
"""

from repro.apps import CliqueFinding, FrequentSubgraphMining, MotifCounting
from repro.core import ArabesqueConfig, run_computation
from repro.datasets import citeseer_like, mico_like
from repro.graph import strip_labels

from _harness import report

WORKLOADS = [
    (
        "FSM-CiteSeer",
        lambda: citeseer_like(),
        lambda: FrequentSubgraphMining(150, max_edges=4),
    ),
    (
        "Motifs-MiCo",
        lambda: strip_labels(mico_like(scale=0.006)),
        lambda: MotifCounting(4),
    ),
    (
        "Cliques-MiCo",
        lambda: strip_labels(mico_like(scale=0.006)),
        lambda: CliqueFinding(max_size=5),
    ),
]

PHASES = ("W", "R", "G", "C", "P")


def test_fig12_cpu_breakdown(benchmark):
    rows = {}

    def run_all():
        for name, make_graph, make_app in WORKLOADS:
            config = ArabesqueConfig(profile_phases=True, collect_outputs=False)
            result = run_computation(make_graph(), make_app(), config)
            # Penultimate superstep, like the paper.
            steps = result.metrics.supersteps
            step = steps[-2] if len(steps) >= 2 else steps[-1]
            rows[name] = dict(step.phase_seconds)
        return rows

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = [f"{'workload':<14} " + " ".join(f"{p:>6}" for p in PHASES)]
    shares = {}
    for name, phases in rows.items():
        total = sum(phases.values()) or 1.0
        share = {p: 100.0 * phases.get(p, 0.0) / total for p in PHASES}
        shares[name] = share
        lines.append(
            f"{name:<14} " + " ".join(f"{share[p]:>5.1f}%" for p in PHASES)
        )
    lines += [
        "",
        "paper (Fig 12): W dominates (48-50%; 25% for Cliques); R is small",
        "  (1-5%); C is 11-18%; P is 15-26% where pattern aggregation is",
        "  used; user-defined functions are negligible.",
    ]
    report("fig12", "Figure 12: CPU phase breakdown (penultimate superstep)", lines)

    for name, share in shares.items():
        # Storing/sharing/extracting embeddings (W+R) plus canonicality is
        # the bulk of the work everywhere.
        assert share["W"] + share["R"] + share["C"] + share["P"] > 40.0, name
    # Pattern aggregation is a real cost for FSM but idle for Cliques'
    # single-shape exploration is still charged pattern lookups, so just
    # check FSM spends more there proportionally.
    assert shares["FSM-CiteSeer"]["P"] >= shares["Cliques-MiCo"]["P"] - 5.0
