"""Ablation: per-pattern ODAG grouping vs a single global ODAG.

The paper keeps "one ODAG per pattern" specifically "in order to reduce the
number of spurious embeddings" (section 5.2).  This bench quantifies the
choice: store the same embedding set both ways and compare wire size and
overapproximation factor (spurious paths per stored embedding).  A single
global ODAG is slightly smaller on the wire but spells out vastly more
spurious paths — each of which costs extraction-time filtering.
"""

from repro.core import Odag, OdagStore, PatternCanonicalizer
from repro.core.canonical import canonicalize_vertex_set
from repro.core.embedding import VERTEX_EXPLORATION, make_embedding
from repro.baselines import enumerate_connected_subgraphs
from repro.datasets import mico_like

from _harness import report


def test_ablation_odag_grouping(benchmark):
    graph = mico_like(scale=0.006)  # labeled: many patterns
    data = {}

    def run_all():
        canonicalizer = PatternCanonicalizer()
        per_pattern = OdagStore()
        single = Odag(3)
        stored = 0
        for members in enumerate_connected_subgraphs(graph, 3):
            words = canonicalize_vertex_set(graph, members)
            embedding = make_embedding(graph, VERTEX_EXPLORATION, words)
            pattern, _ = canonicalizer.canonicalize(embedding.pattern())
            per_pattern.add(pattern, words)
            single.add(words)
            stored += 1
        data["stored"] = stored
        data["per_pattern_bytes"] = per_pattern.wire_size()
        data["per_pattern_paths"] = per_pattern.total_paths()
        data["single_bytes"] = single.wire_size()
        data["single_paths"] = single.total_paths()
        data["patterns"] = per_pattern.num_odags
        return data

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    per_pattern_over = data["per_pattern_paths"] / data["stored"]
    single_over = data["single_paths"] / data["stored"]
    lines = [
        f"stored embeddings:        {data['stored']:,}",
        f"patterns (ODAG count):    {data['patterns']:,}",
        f"per-pattern: {data['per_pattern_bytes']:,} bytes, "
        f"{data['per_pattern_paths']:,} paths ({per_pattern_over:.2f}x over)",
        f"single ODAG: {data['single_bytes']:,} bytes, "
        f"{data['single_paths']:,} paths ({single_over:.2f}x over)",
        "",
        "per-pattern grouping bounds the spurious-path blowup that a single",
        "global ODAG suffers — the design rationale of section 5.2.",
    ]
    report("ablation_odag_grouping", "Ablation: ODAG grouping strategy", lines)

    assert single_over > 3 * per_pattern_over
