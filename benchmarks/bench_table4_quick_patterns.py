"""Table 4: effect of two-level pattern aggregation.

For each workload the paper reports the number of embeddings, the number of
distinct quick patterns they produce, and the number of canonical patterns
the quick patterns collapse to — the reduction factor (embeddings per
isomorphism computation) reaches 10^10 on the largest runs.

The engine's PatternCanonicalizer records exactly these numbers.
"""

from repro.apps import FrequentSubgraphMining, MotifCounting
from repro.core import ArabesqueConfig, run_computation
from repro.datasets import citeseer_like, mico_like, patents_like, youtube_like
from repro.graph import strip_labels

from _harness import fmt_count, report

WORKLOADS = [
    (
        "Motifs-MiCo MS=3",
        lambda: strip_labels(mico_like(scale=0.008)),
        lambda: MotifCounting(3),
    ),
    (
        "FSM-CiteSeer S=300",
        lambda: citeseer_like(),
        lambda: FrequentSubgraphMining(300, max_edges=3),
    ),
    (
        "FSM-Patents S=18",
        lambda: patents_like(scale=0.0008),
        lambda: FrequentSubgraphMining(18, max_edges=3),
    ),
    (
        "Motifs-Youtube MS=3",
        lambda: strip_labels(youtube_like(scale=0.0002)),
        lambda: MotifCounting(3),
    ),
]


def test_table4_two_level_reduction(benchmark):
    rows = {}

    def run_all():
        for name, make_graph, make_app in WORKLOADS:
            config = ArabesqueConfig(collect_outputs=False)
            rows[name] = run_computation(make_graph(), make_app(), config)
        return rows

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = [
        f"{'workload':<22} {'embeddings':>12} {'quick pats':>10} "
        f"{'canonical':>9} {'reduction':>12}"
    ]
    for name, result in rows.items():
        reduction = result.pattern_reduction_factor()
        lines.append(
            f"{name:<22} {fmt_count(result.pattern_requests):>12} "
            f"{result.quick_patterns:>10,} {result.canonical_patterns:>9,} "
            f"{reduction:>11,.0f}x"
        )
    lines += [
        "",
        "paper (Table 4): e.g. Motifs-MiCo MS=3: 66M embeddings, 3 quick,",
        "  2 canonical (22M x); Motifs-Youtube MS=4: 218.9B embeddings,",
        "  21 quick, 6 canonical (10.4B x).  Reduction scales with run size.",
    ]
    report("table4", "Table 4: two-level pattern aggregation effect", lines)

    for name, result in rows.items():
        assert result.quick_patterns >= result.canonical_patterns, name
        # Far fewer isomorphism runs than embeddings.  The quick-pattern
        # space is label-combinatorial (graph-size independent) while the
        # embedding count grows with the graph, so the reduction factor at
        # our miniature scale is necessarily smaller than the paper's; the
        # richly-labeled Patents workload shows the smallest factor.
        assert result.pattern_reduction_factor() > 10, name
    # Unlabeled exhaustive motifs collapse to a handful of patterns, like
    # the paper's 3-quick/2-canonical Motifs-MiCo row.
    motifs = rows["Motifs-MiCo MS=3"]
    assert motifs.quick_patterns <= 10
    assert motifs.pattern_reduction_factor() > 1000
