"""Service-layer benchmark: cold vs warm cache latency, concurrent throughput.

Boots the real HTTP server in-process (``repro.service.start_in_background``)
and measures the serving story end to end, over actual sockets:

* **cold vs warm**: the same query first compiles + runs the engine
  (cache miss), then repeats against the whole-result cache — the warm
  path must be dramatically cheaper, and its payload byte-identical;
* **throughput**: a burst of distinct queries issued from concurrent
  client threads against the bounded worker pool, reported as
  queries/second alongside the same burst issued sequentially;
* **budget floor**: one deliberately budget-busted query, to confirm a
  422 costs roughly a single BSP step rather than a full run.

``BENCH_QUICK=1`` shrinks the graph so CI can smoke-run the bench; the
machine-readable artifact (``results/BENCH_service.json``) is emitted in
both modes and CI asserts it exists.  Correctness bars (byte-identical
warm payloads, every burst query answered, 422 on the busted query) are
hard-asserted in both modes; only the warm-speedup wall-clock bar is
waived on quick's tiny graph.
"""

from __future__ import annotations

import json
import os
import statistics
import threading
import time
import urllib.error
import urllib.request

from _harness import report, report_json

from repro.service import MinerRegistry, QueryService, start_in_background

QUICK = os.environ.get("BENCH_QUICK", "") not in ("", "0", "false", "no")

GRAPH_SCALE = 0.05 if QUICK else 0.3
REPEATS = 3 if QUICK else 10
BURST_THREADS = 4 if QUICK else 8
#: Distinct (uncacheable-from-each-other) queries for the burst.
BURST_QUERIES = [
    {"workload": "match", "query": shape}
    for shape in ("triangle", "wedge", "square", "path3", "star3", "tailed-triangle")
]


def call(url: str, body: dict) -> tuple[int, bytes]:
    request = urllib.request.Request(
        url, data=json.dumps(body).encode(), method="POST"
    )
    try:
        with urllib.request.urlopen(request, timeout=300) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as error:
        return error.code, error.read()


def timed_call(url: str, body: dict) -> tuple[float, int, bytes]:
    start = time.perf_counter()
    status, raw = call(url, body)
    return time.perf_counter() - start, status, raw


def main() -> None:
    registry = MinerRegistry()
    registry.load_dataset("citeseer", scale=GRAPH_SCALE)
    service = QueryService(registry, max_concurrent=BURST_THREADS)
    handle = start_in_background(service)
    query_url = handle.url + "/query"
    lines: list[str] = []
    payload: dict = {"quick": QUICK, "graph_scale": GRAPH_SCALE}

    try:
        # -- cold vs warm -------------------------------------------------
        base = {"graph": "citeseer", "workload": "motifs", "max_size": 3}
        cold_s, status, cold_raw = timed_call(query_url, base)
        assert status == 200, cold_raw
        cold = json.loads(cold_raw)
        assert cold["cache"]["hit"] is False
        warm_times = []
        for _ in range(REPEATS):
            warm_s, status, warm_raw = timed_call(query_url, base)
            assert status == 200, warm_raw
            warm = json.loads(warm_raw)
            assert warm["cache"]["hit"] is True
            assert warm["result"] == cold["result"]  # byte-identical payload
            warm_times.append(warm_s)
        warm_s = statistics.median(warm_times)
        speedup = cold_s / warm_s
        lines += [
            f"cold query   : {cold_s * 1000:8.1f} ms  (engine run)",
            f"warm query   : {warm_s * 1000:8.1f} ms  (result cache, "
            f"median of {REPEATS})",
            f"warm speedup : {speedup:8.1f}x"
            f"{'  [wall-clock bar waived in quick mode]' if QUICK else ''}",
        ]
        payload["cold_ms"] = round(cold_s * 1000, 3)
        payload["warm_ms"] = round(warm_s * 1000, 3)
        payload["warm_speedup"] = round(speedup, 2)
        if not QUICK:
            assert speedup > 5, f"warm cache speedup only {speedup:.1f}x"

        # -- concurrent throughput ---------------------------------------
        bursts = [
            {"graph": "citeseer", **query} for query in BURST_QUERIES
        ]
        sequential_s = 0.0
        for body in bursts:
            elapsed, status, raw = timed_call(query_url, body)
            assert status == 200, raw
            sequential_s += elapsed
        registry_info = registry.cache_info()
        # Re-issue the burst concurrently as *misses*: bust the result
        # cache by varying an execution-neutral semantic field (limit).
        concurrent_bodies = [dict(body, limit=10**9) for body in bursts]
        statuses: list[int] = []
        lock = threading.Lock()

        def worker(body: dict) -> None:
            status, raw = call(query_url, body)
            with lock:
                statuses.append(status)

        start = time.perf_counter()
        threads = [
            threading.Thread(target=worker, args=(body,))
            for body in concurrent_bodies
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        concurrent_s = time.perf_counter() - start
        assert statuses and all(s == 200 for s in statuses), statuses
        lines += [
            f"burst ({len(bursts)} distinct queries):",
            f"  sequential : {sequential_s * 1000:8.1f} ms "
            f"({len(bursts) / sequential_s:6.1f} q/s)",
            f"  concurrent : {concurrent_s * 1000:8.1f} ms "
            f"({len(bursts) / concurrent_s:6.1f} q/s, "
            f"{BURST_THREADS} client threads)",
        ]
        payload["burst_queries"] = len(bursts)
        payload["sequential_ms"] = round(sequential_s * 1000, 3)
        payload["concurrent_ms"] = round(concurrent_s * 1000, 3)
        payload["result_cache"] = vars(registry_info)

        # -- budget floor -------------------------------------------------
        busted = {
            "graph": "citeseer",
            "workload": "motifs",
            "max_size": 4,
            "max_embeddings": 5,
        }
        budget_s, status, raw = timed_call(query_url, busted)
        assert status == 422, raw
        error = json.loads(raw)["error"]
        assert error["type"] == "budget_exceeded", error
        lines.append(
            f"budget trip  : {budget_s * 1000:8.1f} ms to a 422 "
            f"(spent {error['spent']:,} embeddings of a {error['limit']} budget)"
        )
        payload["budget_trip_ms"] = round(budget_s * 1000, 3)
    finally:
        handle.stop()

    report(
        "BENCH_service",
        f"Query service: cold vs warm cache, concurrent burst "
        f"(citeseer scale {GRAPH_SCALE}{', quick' if QUICK else ''})",
        lines,
    )
    report_json("BENCH_service", payload)


if __name__ == "__main__":
    main()
