"""Figure 7: scalability analysis of the alternative paradigms (TLV, TLP).

The paper runs FSM on CiteSeer (S=300) with both paradigms on 1..10 servers
and finds that neither scales: TLV drowns in messages and hotspots ("two
orders of magnitude slower" than Arabesque; "120 million messages versus
137 thousand"), TLP is capped by the number of candidate patterns and their
skew ("irrespective of the size of the cluster, only a few workers will be
used").

Reproduced here on the full-scale CiteSeer-like graph:

* both paradigms fall well short of ideal speedup;
* TLP gains nothing once workers outnumber candidate patterns (the
  parallelism ceiling measured exactly);
* TLV exchanges many times more messages than the TLE engine and is an
  order of magnitude slower in wall-clock for the same job.

Our synthetic labels are assigned without homophily, which softens the
per-pattern cost skew relative to the real CiteSeer; the TLP curve is
therefore above the paper's near-flat line but still clearly sub-linear
(EXPERIMENTS.md discusses the gap).
"""

import time

from repro.apps import MotifCounting
from repro.baselines import run_tlp_fsm, run_tlv_fsm
from repro.bsp import CostModel, speedup_curve
from repro.core import ArabesqueConfig, run_computation
from repro.datasets import citeseer_like

from _harness import report

WORKER_COUNTS = (1, 2, 5, 10)
THRESHOLD = 300


def test_fig7_tlv_tlp_scalability(benchmark):
    graph = citeseer_like()
    model = CostModel()
    data = {}

    def run_all():
        tlv_times = {}
        tlp_times = {}
        for workers in WORKER_COUNTS:
            tlv = run_tlv_fsm(graph, THRESHOLD, max_size=3, num_workers=workers)
            tlv_times[workers] = model.makespan(tlv.metrics)
            tlp = run_tlp_fsm(graph, THRESHOLD, max_edges=3, num_workers=workers)
            tlp_times[workers] = model.makespan(tlp.metrics)
        data["tlv"] = tlv_times
        data["tlp"] = tlp_times
        # TLP's parallelism ceiling: more workers than candidate patterns.
        ceiling_small = run_tlp_fsm(graph, THRESHOLD, max_edges=3, num_workers=21)
        ceiling_large = run_tlp_fsm(graph, THRESHOLD, max_edges=3, num_workers=64)
        data["tlp_at_21"] = model.makespan(ceiling_small.metrics)
        data["tlp_at_64"] = model.makespan(ceiling_large.metrics)
        data["tlp_candidates"] = max(ceiling_large.candidates_per_level)

        # Wall-clock and message comparison against the TLE engine on a
        # *matched* job: both enumerate every vertex-induced embedding of
        # up to 3 vertices (TLV with threshold 1; TLE as motif counting).
        started = time.perf_counter()
        tlv = run_tlv_fsm(graph, 1, max_size=3, num_workers=5)
        data["tlv_wall"] = time.perf_counter() - started
        data["tlv_messages"] = tlv.metrics.total_messages
        data["tlv_embeddings"] = tlv.embeddings_processed
        started = time.perf_counter()
        tle = run_computation(
            graph,
            MotifCounting(3),
            ArabesqueConfig(num_workers=5, collect_outputs=False),
        )
        data["tle_wall"] = time.perf_counter() - started
        data["tle_messages"] = tle.metrics.total_messages
        data["tle_embeddings"] = tle.total_processed
        return data

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    tlv_speedup = speedup_curve(data["tlv"], baseline_workers=1)
    tlp_speedup = speedup_curve(data["tlp"], baseline_workers=1)
    lines = [f"{'workers':>7} {'ideal':>6} {'TLV':>6} {'TLP':>6}"]
    for workers in WORKER_COUNTS:
        lines.append(
            f"{workers:>7} {workers:>6.1f} {tlv_speedup[workers]:>6.2f} "
            f"{tlp_speedup[workers]:>6.2f}"
        )
    ceiling_gain = data["tlp_at_21"] / data["tlp_at_64"]
    lines += [
        "",
        f"TLP ceiling: {data['tlp_candidates']} candidate patterns; "
        f"64 workers vs 21 workers gains x{ceiling_gain:.2f} (ideal x3.0)",
        f"matched exploration job ({data['tlv_embeddings']:,} embeddings both): "
        f"TLV wall {data['tlv_wall']:.2f}s vs Arabesque/TLE {data['tle_wall']:.2f}s "
        f"(paper: >300s vs 7s)",
        f"messages: TLV={data['tlv_messages']:,} vs TLE={data['tle_messages']:,} "
        f"(paper: 120M vs 137K)",
        "paper (Fig 7): both curves flatten far below ideal by 5-10 nodes.",
    ]
    report("fig7", "Figure 7: TLV / TLP speedup, FSM on CiteSeer-like (S=300)", lines)

    # Shape assertions.
    assert tlv_speedup[10] < 0.6 * 10  # far from ideal
    assert tlp_speedup[10] < 0.8 * 10
    # No TLP speedup beyond the candidate-pattern count.
    assert ceiling_gain < 1.15
    # Both paradigms explored the same embeddings; TLV paid far more.
    assert data["tlv_embeddings"] == data["tle_embeddings"]
    assert data["tlv_wall"] > 3 * data["tle_wall"]
    assert data["tlv_messages"] > 3 * data["tle_messages"]
