"""Table 1: graphs used for the evaluation.

Regenerates the dataset-statistics table for the synthetic stand-ins and
shows the paper's originals next to them.  The labeled generators must
match label counts exactly and degree shape approximately (DESIGN.md,
substitution 2).
"""

from repro.datasets import DATASETS, PAPER_TABLE1, dataset_statistics

from _harness import report


def test_table1_dataset_statistics(benchmark):
    rows = {}

    def build_all():
        for name, factory in DATASETS.items():
            rows[name] = dataset_statistics(factory())
        return rows

    benchmark.pedantic(build_all, rounds=1, iterations=1)

    lines = [
        f"{'dataset':<16} {'V':>9} {'E':>11} {'labels':>6} {'avg deg':>8}   "
        f"(paper: {'V':>11} {'E':>13} {'labels':>6} {'deg':>5})"
    ]
    for name, stats in rows.items():
        paper = PAPER_TABLE1[name]
        paper_labels = str(paper.labels) if paper.labels else "-"
        lines.append(
            f"{stats.row()}   (paper: {paper.vertices:>11,} {paper.edges:>13,} "
            f"{paper_labels:>6} {paper.average_degree:>5.1f})"
        )
    report("table1", "Table 1: dataset statistics (ours vs paper)", lines)

    for name, stats in rows.items():
        paper = PAPER_TABLE1[name]
        if paper.labels:
            assert stats.labels == paper.labels
