"""Figure 10: slowdown factor when ODAGs are disabled.

The paper reruns the five Table 3 workloads with plain embedding lists and
reports 1.16x - 4.18x longer execution: compact ODAGs cost CPU to build and
extract but save far more in serialization, transfer, and GC.

In this reproduction the communication savings appear in the simulated
makespan (list mode ships every embedding as a message; ODAG mode ships
array entries plus one broadcast), which is the number the paper's cluster
measured.  In-process wall-clock is also reported for transparency: at this
scale it mostly reflects Python object overheads, where lists are cheaper —
exactly the "first exploration steps of very large and sparse graphs"
regime the paper says favors embedding lists (section 6.3 / Table 5).
"""

from repro.apps import CliqueFinding, FrequentSubgraphMining, MotifCounting
from repro.bsp import CostModel
from repro.core import ArabesqueConfig, run_computation
from repro.core.storage import LIST_STORAGE, ODAG_STORAGE
from repro.datasets import citeseer_like, mico_like, youtube_like
from repro.graph import strip_labels

from _harness import report

WORKLOADS = [
    (
        "Motifs-MiCo",
        lambda: strip_labels(mico_like(scale=0.006)),
        lambda: MotifCounting(3),
    ),
    (
        "FSM-CiteSeer",
        lambda: citeseer_like(),
        lambda: FrequentSubgraphMining(100, max_edges=4),
    ),
    (
        "Cliques-MiCo",
        lambda: strip_labels(mico_like(scale=0.006)),
        lambda: CliqueFinding(max_size=4),
    ),
    (
        "Motifs-Youtube",
        lambda: strip_labels(youtube_like(scale=0.00015)),
        lambda: MotifCounting(3),
    ),
]

SERVERS = 20


def test_fig10_no_odag_slowdown(benchmark):
    model = CostModel()
    rows = {}

    def run_all():
        for name, make_graph, make_app in WORKLOADS:
            graph = make_graph()
            measured = {}
            for storage in (ODAG_STORAGE, LIST_STORAGE):
                config = ArabesqueConfig(
                    num_workers=SERVERS, storage=storage, collect_outputs=False
                )
                result = run_computation(graph, make_app(), config)
                measured[storage] = {
                    "makespan": result.makespan(model),
                    "wall": result.wall_seconds,
                    "bytes": result.metrics.total_bytes
                    + result.metrics.total_broadcast_bytes,
                }
            rows[name] = measured
        return rows

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = [
        f"{'workload':<16} {'slowdown (sim)':>14} {'wall ratio':>10} "
        f"{'bytes ratio':>11}"
    ]
    slowdowns = {}
    for name, measured in rows.items():
        slowdown = (
            measured[LIST_STORAGE]["makespan"] / measured[ODAG_STORAGE]["makespan"]
        )
        wall_ratio = measured[LIST_STORAGE]["wall"] / measured[ODAG_STORAGE]["wall"]
        bytes_ratio = measured[LIST_STORAGE]["bytes"] / max(
            measured[ODAG_STORAGE]["bytes"], 1
        )
        slowdowns[name] = slowdown
        lines.append(
            f"{name:<16} {slowdown:>14.2f} {wall_ratio:>10.2f} {bytes_ratio:>11.2f}"
        )
    lines += [
        "",
        "paper (Fig 10, 20 servers): Motifs-MiCo 1.16x, FSM-CiteSeer 4.18x,",
        "  Cliques-MiCo 1.77x, Motifs-Youtube 1.19x, FSM-Patents 1.30x.",
    ]
    report("fig10", "Figure 10: slowdown without ODAGs (list storage)", lines)

    # Disabling ODAGs never speeds up the simulated cluster, and the
    # storage-heavy workloads land in the paper's 1.2x-4.2x band.  (The
    # paper's worst case, FSM at depth 7, stores billions of embeddings;
    # our FSM depth is capped at 4, so its penalty is small — the
    # exhaustive motif workloads take the storage-heavy role here.)
    for name, slowdown in slowdowns.items():
        assert slowdown >= 0.95, name
    assert max(slowdowns.values()) > 1.4
    assert max(slowdowns.values()) < 4.5
