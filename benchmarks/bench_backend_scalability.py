"""Execution-backend scalability: real wall-clock speedup, not simulation.

Every other scalability experiment in this suite reports *simulated*
makespans from the metered distribution (Figure 8 via the cost model).
This bench measures what the pluggable runtime actually buys: the same
motifs workload on the same synthetic benchmark graph, executed by the
serial, thread, and process backends at several worker counts, timed for
real.

Expectations by construction:

* every (backend, workers) cell produces a byte-identical semantic result
  (``RunResult.canonical_signature`` — checked here, hard assert);
* the thread backend tracks serial on GIL-bound CPython (it exists for
  correctness coverage and GIL-free builds);
* the process backend approaches min(workers, cores)× speedup as the
  per-step work grows; with 4 workers on a ≥4-core machine the target is
  ≥ 1.5× over serial.  On single-core containers it degenerates to ~1×
  (there is no parallel hardware to use) — the report prints the core
  count so the numbers can be read honestly.
"""

import os
import time

from repro.apps import MotifCounting
from repro.core import ArabesqueConfig, run_computation
from repro.datasets import mico_like
from repro.graph import strip_labels

from _harness import report

#: ``BENCH_QUICK=1`` shrinks the graph and worker grid so CI can smoke-run
#: the bench in seconds (the signature cross-check still runs in full).
QUICK = os.environ.get("BENCH_QUICK", "") not in ("", "0", "false", "no")

BACKENDS = ("serial", "thread", "process")
WORKER_COUNTS = (1, 2) if QUICK else (1, 2, 4)


def _benchmark_graph():
    """The Motifs-MiCo graph of the Figure 8 bench, one notch larger so a
    step's compute dominates the process backend's fork/merge overhead."""
    return strip_labels(mico_like(scale=0.002 if QUICK else 0.02))


def _timed_run(graph, backend, workers):
    config = ArabesqueConfig(
        num_workers=workers, backend=backend, collect_outputs=False
    )
    started = time.perf_counter()
    result = run_computation(graph, MotifCounting(3), config)
    elapsed = time.perf_counter() - started
    return elapsed, result


def run_backend_scalability():
    graph = _benchmark_graph()
    cores = os.cpu_count() or 1
    wall: dict[tuple[str, int], float] = {}
    signatures: set[bytes] = set()
    for backend in BACKENDS:
        for workers in WORKER_COUNTS:
            elapsed, result = _timed_run(graph, backend, workers)
            wall[(backend, workers)] = elapsed
            signatures.add(result.canonical_signature(ignore_output_order=True))
    assert len(signatures) == 1, (
        "backends/worker counts disagree on the semantic result"
    )

    top_workers = WORKER_COUNTS[-1]
    serial_top = wall[("serial", top_workers)]
    lines = [
        f"graph: {graph.name}  V={graph.num_vertices:,} E={graph.num_edges:,}"
        f"  | motifs max_size=3 | cores available: {cores}",
        "",
        f"{'backend':<10} " + " ".join(f"w={w:>7}" for w in WORKER_COUNTS)
        + "   (wall seconds)",
    ]
    for backend in BACKENDS:
        lines.append(
            f"{backend:<10} "
            + " ".join(f"{wall[(backend, w)]:>9.3f}" for w in WORKER_COUNTS)
        )
    lines += [
        "",
        f"{'speedup vs serial (same workers)':<34}",
    ]
    for backend in ("thread", "process"):
        cells = " ".join(
            f"{wall[('serial', w)] / wall[(backend, w)]:>9.2f}"
            for w in WORKER_COUNTS
        )
        lines.append(f"{backend:<10} {cells}")
    process_speedup = serial_top / wall[("process", top_workers)]
    cells = len(BACKENDS) * len(WORKER_COUNTS)
    lines += [
        "",
        f"process backend, {top_workers} workers: "
        f"{process_speedup:.2f}x over serial",
        f"(target >= 1.5x on >= 4 cores; this machine has {cores})",
        f"all {cells} configurations produced byte-identical results",
    ]
    report(
        "backend_scalability",
        "Execution backends: measured wall-clock scalability",
        lines,
    )
    return wall, process_speedup, cores


def test_backend_scalability(benchmark):
    outcome = {}

    def run_all():
        outcome["result"] = run_backend_scalability()
        return outcome["result"]

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    _, process_speedup, cores = outcome["result"]
    if cores >= 4 and not QUICK:
        # Quick mode's tiny graph is all fork/merge overhead — the speedup
        # bar only means something on the full-size workload.
        # The acceptance bar: real parallel hardware must show up as real
        # wall-clock speedup.  Not asserted on smaller machines, where no
        # backend could physically deliver it.
        assert process_speedup >= 1.5


if __name__ == "__main__":  # pragma: no cover
    run_backend_scalability()
