"""Checkpoint + spill benchmark: snapshot overhead, crash-resume, memory.

Three sections, all on the citeseer-like synthetic graph:

* **snapshot overhead**: the same cliques run with and without a
  checkpoint directory — reported as absolute and per-barrier overhead,
  with the on-disk snapshot sizes.  Checkpointing pickles the merged
  store at every barrier, so the cost scales with store bytes; the bar
  is that it stays a modest fraction of the run, not free.
* **crash-resume**: the run is killed at its first barrier (via the
  fault-injection writer) and resumed; the resumed signature must be
  **byte-identical** to the uninterrupted run.  This is the acceptance
  property and is hard-asserted in BOTH modes, quick included.
* **spill vs list memory**: the identical row stream is fed to a
  ``ListStore`` and to a ``SpillListStore`` whose byte budget is a
  fraction of the list's footprint; the spill store must stay under its
  budget (hard-asserted) while extracting the byte-identical sorted
  stream (hard-asserted), and the engine-level spill run must produce a
  canonical signature byte-identical to list storage (hard-asserted).

``BENCH_QUICK=1`` shrinks the graph for CI smoke runs; every
correctness bar above still holds, only the wall-clock numbers lose
meaning.  Machine-readable results land in
``results/BENCH_checkpoint.json``.
"""

from __future__ import annotations

import os
import time

from _harness import fmt_count, report, report_json

from repro.apps import CliqueFinding, MotifCounting
from repro.checkpoint import list_snapshots, resume_run, run_to_crash
from repro.core import (
    ArabesqueConfig,
    LIST_STORAGE,
    ListStore,
    SPILL_STORAGE,
    SpillListStore,
    run_computation,
)
from repro.datasets import citeseer_like

QUICK = os.environ.get("BENCH_QUICK", "") not in ("", "0", "false", "no")

GRAPH_SCALE = 0.05 if QUICK else 0.3
MAX_CLIQUE = 4
REPEATS = 1 if QUICK else 3


def best_wall(fn):
    best, value = float("inf"), None
    for _ in range(REPEATS):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def bench_snapshot_overhead(graph, run_dir):
    plain_s, plain = best_wall(
        lambda: run_computation(
            graph, CliqueFinding(max_size=MAX_CLIQUE, min_size=2), ArabesqueConfig()
        )
    )
    config = ArabesqueConfig(checkpoint_dir=run_dir, checkpoint_keep=100)
    ckpt_s, ckpt = best_wall(
        lambda: run_computation(
            graph, CliqueFinding(max_size=MAX_CLIQUE, min_size=2), config
        )
    )
    assert ckpt.canonical_signature() == plain.canonical_signature()
    snapshots = list_snapshots(run_dir)
    snapshot_bytes = [os.path.getsize(path) for _, path in snapshots]
    barriers = len(snapshots)
    overhead = ckpt_s - plain_s
    return {
        "plain_s": plain_s,
        "checkpointed_s": ckpt_s,
        "barriers": barriers,
        "overhead_s": overhead,
        "overhead_per_barrier_ms": 1000 * overhead / max(1, barriers),
        "snapshot_bytes": snapshot_bytes,
    }


def bench_crash_resume(graph, run_dir):
    config = ArabesqueConfig()
    reference = run_computation(
        graph, MotifCounting(3), ArabesqueConfig()
    )
    run_to_crash(graph, MotifCounting(3), config, run_dir, 0)
    start = time.perf_counter()
    resumed = resume_run(run_dir, graph, config=config)
    resume_s = time.perf_counter() - start
    # The acceptance bar: byte-identical to the uninterrupted run.
    assert (
        resumed.canonical_signature() == reference.canonical_signature()
    ), "resumed run diverged from the uninterrupted run"
    return {"resume_s": resume_s, "byte_identical": True}


def bench_spill_memory(graph, spill_dir):
    # Store-level: same rows, list footprint vs spill budget compliance.
    seed = run_computation(
        graph,
        CliqueFinding(max_size=3, min_size=2),
        ArabesqueConfig(storage=LIST_STORAGE, collect_outputs=True),
    )
    from repro.core import Pattern

    rows_pattern = Pattern((0, 0), ((0, 1, 0),))
    rows = [tuple(words) for words in seed.outputs]
    list_store = ListStore()
    for words in rows:
        list_store.add(rows_pattern, words)
    list_nbytes = list_store.wire_size()
    budget = max(256, list_nbytes // 8)
    spill_store = SpillListStore(directory=spill_dir, budget_nbytes=budget)
    for words in rows:
        spill_store.add(rows_pattern, words)
    assert spill_store.peak_memory_nbytes <= budget + 4 + 4 * max(
        (len(r) for r in rows), default=0
    ), "spill store exceeded its byte budget"
    list_store.sort()
    assert list(spill_store.extract_partition(0, 1)) == list(
        list_store.extract_partition(0, 1)
    ), "spill extraction diverged from sorted list extraction"
    spill_store.dispose()

    # Engine-level: byte-identical signatures under a tiny budget.
    list_s, listed = best_wall(
        lambda: run_computation(
            graph,
            CliqueFinding(max_size=MAX_CLIQUE, min_size=2),
            ArabesqueConfig(storage=LIST_STORAGE),
        )
    )
    spill_s, spilled = best_wall(
        lambda: run_computation(
            graph,
            CliqueFinding(max_size=MAX_CLIQUE, min_size=2),
            ArabesqueConfig(storage=SPILL_STORAGE, spill_budget_nbytes=budget),
        )
    )
    assert (
        spilled.canonical_signature() == listed.canonical_signature()
    ), "spill storage diverged from list storage"
    return {
        "rows": len(rows),
        "list_store_nbytes": list_nbytes,
        "spill_budget_nbytes": budget,
        "spill_peak_memory_nbytes": spill_store.peak_memory_nbytes,
        "list_run_s": list_s,
        "spill_run_s": spill_s,
        "list_peak_storage_bytes": listed.peak_storage_bytes,
    }


def main():
    import tempfile

    graph = citeseer_like(scale=GRAPH_SCALE)
    with tempfile.TemporaryDirectory(prefix="bench-ckpt-") as root:
        overhead = bench_snapshot_overhead(graph, os.path.join(root, "ovh"))
        resume = bench_crash_resume(graph, os.path.join(root, "crash"))
        spill = bench_spill_memory(graph, os.path.join(root, "spill"))

    lines = [
        f"graph: citeseer-like scale={GRAPH_SCALE} "
        f"({graph.num_vertices:,} v, {graph.num_edges:,} e)"
        + ("  [QUICK]" if QUICK else ""),
        "",
        f"cliques k<={MAX_CLIQUE}, no checkpoint:   {overhead['plain_s']*1000:8.1f} ms",
        f"cliques k<={MAX_CLIQUE}, checkpointed:    {overhead['checkpointed_s']*1000:8.1f} ms"
        f"  ({overhead['barriers']} barriers, "
        f"{overhead['overhead_per_barrier_ms']:.2f} ms/barrier)",
        f"snapshot sizes: {[fmt_count(b) for b in overhead['snapshot_bytes']]}",
        "",
        f"crash at barrier 0 -> resume: {resume['resume_s']*1000:8.1f} ms, "
        "byte-identical: yes (asserted)",
        "",
        f"spill rows: {spill['rows']:,}  list store bytes: "
        f"{fmt_count(spill['list_store_nbytes'])}  budget: "
        f"{fmt_count(spill['spill_budget_nbytes'])}  spill peak mem: "
        f"{fmt_count(spill['spill_peak_memory_nbytes'])} (under budget, asserted)",
        f"engine list run: {spill['list_run_s']*1000:8.1f} ms   "
        f"spill run: {spill['spill_run_s']*1000:8.1f} ms "
        "(byte-identical, asserted)",
    ]
    report("checkpoint", "Checkpoint + spill: overhead, resume, memory", lines)
    report_json(
        "BENCH_checkpoint",
        {
            "quick": QUICK,
            "graph_scale": GRAPH_SCALE,
            "snapshot_overhead": overhead,
            "crash_resume": resume,
            "spill": spill,
        },
    )


if __name__ == "__main__":
    main()
