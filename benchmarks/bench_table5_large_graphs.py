"""Table 5: execution details with large graphs.

The paper pushes 20 servers to the limit: Motifs on SN (8.4 * 10^12
embeddings, 6h18m, 110 GB), Cliques on SN (3 * 10^10, 29m, 50 GB), Motifs
on Instagram MS=3 (5 * 10^12, 10h45m, 140 GB — with embedding *lists*,
because sparse-graph ODAGs compress too little at shallow depths).

At reproduction scale the same three runs exercise the same paths: the
dense SN stand-in generates vastly more embeddings per vertex than the
sparse Instagram one, Cliques loads the system far less than Motifs, and
the Instagram run uses list storage like the paper did.
"""

import time

from repro.apps import CliqueFinding, MotifCounting
from repro.core import ArabesqueConfig, run_computation
from repro.core.storage import LIST_STORAGE
from repro.datasets import instagram_like, sn_like

from _harness import fmt_count, report

WORKLOADS = [
    (
        "Motifs-SN (MS=4)",
        lambda: sn_like(scale=0.00006),
        lambda: MotifCounting(4),
        None,
    ),
    (
        "Cliques-SN (MS=5)",
        lambda: sn_like(scale=0.0002),
        lambda: CliqueFinding(max_size=5),
        None,
    ),
    (
        "Motifs-Inst (MS=3)",
        lambda: instagram_like(scale=1 / 60_000),
        lambda: MotifCounting(3),
        LIST_STORAGE,
    ),
]


def test_table5_large_graphs(benchmark):
    rows = []

    def run_all():
        for name, make_graph, make_app, storage in WORKLOADS:
            graph = make_graph()
            config = ArabesqueConfig(
                num_workers=20,
                collect_outputs=False,
                storage=storage or "odag",
            )
            started = time.perf_counter()
            result = run_computation(graph, make_app(), config)
            wall = time.perf_counter() - started
            rows.append(
                (
                    name,
                    wall,
                    result.peak_storage_bytes,
                    result.total_processed,
                    graph.num_vertices,
                    graph.num_edges,
                )
            )
        return rows

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = [
        f"{'application':<20} {'time s':>7} {'peak store':>11} "
        f"{'embeddings':>11} {'V':>7} {'E':>8}"
    ]
    for name, wall, peak, embeddings, v, e in rows:
        lines.append(
            f"{name:<20} {wall:>7.1f} {peak:>10,}B {fmt_count(embeddings):>11} "
            f"{v:>7,} {e:>8,}"
        )
    lines += [
        "",
        "paper (Table 5): Motifs-SN 6h18m / 110GB / 8.4e12; Cliques-SN",
        "  29m / 50GB / 3e10; Motifs-Inst(lists) 10h45m / 140GB / 5e12.",
    ]
    report("table5", "Table 5: large-graph runs (downscaled)", lines)

    by_name = {row[0]: row for row in rows}
    motifs_sn = by_name["Motifs-SN (MS=4)"]
    cliques_sn = by_name["Cliques-SN (MS=5)"]
    # Motifs loads the system far more than Cliques per vertex: the SN
    # motif run processes orders of magnitude more embeddings despite the
    # smaller graph (paper: 8.4e12 vs 3e10).
    assert motifs_sn[3] > 10 * cliques_sn[3]
