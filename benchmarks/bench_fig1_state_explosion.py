"""Figure 1: exponential growth of the intermediate state.

The paper plots the number of "interesting" subgraphs per size for five
workload/dataset combinations, spanning 10^3..10^12 on graphs with up to
hundreds of millions of edges.  At our downscaled sizes the absolute counts
are smaller; the reproduction target is the *exponential growth per size*
(each extra vertex/edge multiplies the count by roughly average-degree).
"""

from repro.apps import CliqueFinding, FrequentSubgraphMining, MotifCounting
from repro.core import ArabesqueConfig, run_computation
from repro.datasets import citeseer_like, mico_like, sn_like, youtube_like
from repro.graph import strip_labels

from _harness import fmt_count, report

WORKLOADS = [
    ("Motifs (MiCo)", lambda: (strip_labels(mico_like(scale=0.008)), MotifCounting(3))),
    (
        "Motifs (Youtube)",
        lambda: (strip_labels(youtube_like(scale=0.0002)), MotifCounting(3)),
    ),
    (
        "Cliques (MiCo)",
        lambda: (strip_labels(mico_like(scale=0.008)), CliqueFinding(max_size=4)),
    ),
    (
        "FSM (CiteSeer)",
        lambda: (citeseer_like(), FrequentSubgraphMining(100, max_edges=4)),
    ),
    ("Motifs (SN)", lambda: (sn_like(scale=0.0001), MotifCounting(3))),
]


def test_fig1_interesting_subgraphs_per_size(benchmark):
    config = ArabesqueConfig(collect_outputs=False)
    series = {}

    def run_all():
        for name, make in WORKLOADS:
            graph, app = make()
            result = run_computation(graph, app, config)
            series[name] = result.embeddings_by_step()
        return series

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = [f"{'workload':<20} " + " ".join(f"size{i+1:>2}" for i in range(5))]
    for name, counts in series.items():
        rendered = " ".join(f"{fmt_count(c):>7}" for c in counts[:5])
        lines.append(f"{name:<20} {rendered}")
    growth_note = []
    for name, counts in series.items():
        positives = [c for c in counts if c > 0]
        if len(positives) >= 3:
            growth = positives[-1] / positives[-3]
            growth_note.append(f"{name}: x{growth:.0f} over last two sizes")
    report(
        "fig1",
        "Figure 1: interesting subgraphs per exploration size",
        lines + ["", "growth factors:"] + growth_note,
    )

    # The defining property: counts explode with size for the exhaustive
    # workloads (motifs) — at least 5x per size on these graphs.
    for name in ("Motifs (MiCo)", "Motifs (Youtube)", "Motifs (SN)"):
        counts = [c for c in series[name] if c > 0]
        assert counts[-1] > 5 * counts[-2]
