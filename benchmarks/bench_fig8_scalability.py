"""Table 3 + Figure 8: scalability of Arabesque on five workloads.

The paper runs each workload on 1/5/10/15/20 servers and plots speedup
relative to the 5-server configuration.  The reproduced shape: all five
workloads scale, but "applications generating more intermediate state and
more patterns scale less" — FSM (many patterns, many ODAGs, large
broadcasts) flattens earlier than Cliques (single pattern per step), with
Motifs in between.

Each configuration here is a real exploration run at that worker count;
the simulated cost model turns the metered distribution into makespans.
"""

from repro.apps import CliqueFinding, FrequentSubgraphMining, MotifCounting
from repro.bsp import CostModel, speedup_curve
from repro.core import ArabesqueConfig, run_computation
from repro.datasets import citeseer_like, mico_like, patents_like, youtube_like
from repro.graph import strip_labels

from _harness import report

SERVER_COUNTS = (1, 5, 10, 15, 20)

WORKLOADS = [
    (
        "Motifs-MiCo",
        lambda: strip_labels(mico_like(scale=0.008)),
        lambda: MotifCounting(3),
    ),
    (
        "FSM-CiteSeer",
        lambda: citeseer_like(),
        lambda: FrequentSubgraphMining(150, max_edges=4),
    ),
    (
        "Cliques-MiCo",
        lambda: strip_labels(mico_like(scale=0.008)),
        lambda: CliqueFinding(max_size=4),
    ),
    (
        "Motifs-Youtube",
        lambda: strip_labels(youtube_like(scale=0.0002)),
        lambda: MotifCounting(3),
    ),
    (
        "FSM-Patents",
        lambda: patents_like(scale=0.0008),
        lambda: FrequentSubgraphMining(18, max_edges=3),
    ),
]


def test_fig8_arabesque_scalability(benchmark):
    model = CostModel()
    makespans: dict[str, dict[int, float]] = {}

    def run_all():
        for name, make_graph, make_app in WORKLOADS:
            graph = make_graph()
            times = {}
            for servers in SERVER_COUNTS:
                config = ArabesqueConfig(
                    num_workers=servers, collect_outputs=False
                )
                result = run_computation(graph, make_app(), config)
                times[servers] = result.makespan(model)
            makespans[name] = times
        return makespans

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = [
        f"{'workload':<16} "
        + " ".join(f"{s:>8}" for s in SERVER_COUNTS)
        + "   (simulated seconds)"
    ]
    for name, times in makespans.items():
        lines.append(
            f"{name:<16} " + " ".join(f"{times[s]:>8.3f}" for s in SERVER_COUNTS)
        )
    lines.append("")
    lines.append(
        f"{'speedup vs 5':<16} " + " ".join(f"{s:>8}" for s in SERVER_COUNTS)
    )
    curves = {}
    for name, times in makespans.items():
        curve = speedup_curve(times, baseline_workers=5)
        curves[name] = curve
        lines.append(
            f"{name:<16} " + " ".join(f"{curve[s]:>8.2f}" for s in SERVER_COUNTS)
        )
    lines += [
        "",
        "paper (Fig 8, speedup at 20 servers vs 5): Motifs-MiCo ~3.0,",
        "  FSM-CiteSeer ~2.6, Cliques-MiCo ~3.9, Motifs-Youtube ~3.1,",
        "  FSM-Patents ~2.1 (ideal: 4.0).",
    ]
    report("fig8", "Table 3 / Figure 8: Arabesque scalability", lines)

    for name, curve in curves.items():
        # Everything scales: 20 servers beat 5.
        assert curve[20] > 1.5, name
        # Nothing is super-linear.
        assert curve[20] <= 4.2, name
    # The pattern-rich FSM workloads scale worse than Cliques (single
    # unlabeled-shape pattern per step) — the ODAG-broadcast/deserialize
    # ceiling of section 6.3.
    assert curves["FSM-CiteSeer"][20] < curves["Cliques-MiCo"][20]
