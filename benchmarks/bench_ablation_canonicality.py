"""Ablation: incremental canonicality (Algorithm 2) vs from-scratch checks.

Algorithm 2 verifies a candidate in one O(|embedding|) scan because the
parent is known canonical.  The naive alternative re-validates the whole
word sequence prefix by prefix — O(|embedding|^2) per candidate.  Both
explore identical sets (asserted); the bench measures the cost of giving up
incrementality, which grows with exploration depth.
"""

from repro.apps import CliqueFinding, MotifCounting, motif_counts
from repro.core import ArabesqueConfig, run_computation
from repro.datasets import mico_like
from repro.graph import strip_labels

from _harness import report


def test_ablation_incremental_canonicality(benchmark):
    graph = strip_labels(mico_like(scale=0.006))
    rows = {}

    def run_all():
        for name, make_app in (
            ("Motifs MS=3", lambda: MotifCounting(3)),
            ("Cliques MS=5", lambda: CliqueFinding(max_size=5)),
        ):
            measured = {}
            for incremental in (True, False):
                config = ArabesqueConfig(
                    incremental_canonicality=incremental, collect_outputs=False
                )
                measured[incremental] = run_computation(graph, make_app(), config)
            rows[name] = measured
        return rows

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = [f"{'workload':<14} {'incremental s':>13} {'from-scratch s':>14} {'ratio':>6}"]
    for name, measured in rows.items():
        fast = measured[True].wall_seconds
        slow = measured[False].wall_seconds
        lines.append(f"{name:<14} {fast:>13.2f} {slow:>14.2f} {slow / fast:>6.2f}")
    lines += [
        "",
        "Algorithm 2's incrementality never changes the explored set; it",
        "only removes the per-candidate re-validation of the whole prefix.",
    ]
    report(
        "ablation_canonicality",
        "Ablation: incremental vs from-scratch canonicality",
        lines,
    )

    for name, measured in rows.items():
        assert (
            measured[True].total_processed == measured[False].total_processed
        ), name
        # From-scratch is never cheaper (equal is fine at shallow depth).
        assert measured[False].wall_seconds >= 0.8 * measured[True].wall_seconds
    motifs = rows["Motifs MS=3"]
    assert motif_counts(motifs[True]) == motif_counts(motifs[False])
