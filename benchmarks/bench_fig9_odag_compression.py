"""Figure 9: compression effect of ODAGs per exploration depth.

The paper compares the serialized size of the intermediate embeddings with
and without ODAGs at each depth (FSM on CiteSeer S=220 MS=7 and on Youtube
S=250k) and finds the gap growing to "several orders of magnitude" at the
deeper levels, where many embeddings share array entries.

The engine records both sizes on every run (``storage_bytes`` is the ODAG
wire size after the global merge; ``list_bytes`` is what the same embedding
set would need as plain word lists), so one run per dataset yields both
curves.  Substitution note: our downscaled labeled Youtube stand-in has no
frequent patterns past depth 2 (80 labels over 4.6k vertices), so the
second series uses exhaustive unlabeled exploration (motifs) on it instead;
that is the same storage regime — one ODAG per unlabeled pattern with heavy
prefix sharing — that makes the paper's deep FSM levels compress so well.
"""

from repro.apps import FrequentSubgraphMining, MotifCounting
from repro.core import ArabesqueConfig, run_computation
from repro.datasets import citeseer_like, youtube_like
from repro.graph import strip_labels

from _harness import report

WORKLOADS = [
    (
        "CiteSeer-FSM",
        lambda: citeseer_like(),
        lambda: FrequentSubgraphMining(100, max_edges=4),
    ),
    (
        "Youtube-Motifs",
        lambda: strip_labels(youtube_like(scale=0.00007)),
        lambda: MotifCounting(4),
    ),
]


def test_fig9_odag_compression(benchmark):
    results = {}

    def run_all():
        for name, make_graph, make_app in WORKLOADS:
            config = ArabesqueConfig(collect_outputs=False)
            results[name] = run_computation(make_graph(), make_app(), config)
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = [
        f"{'workload':<15} {'depth':>5} {'ODAG bytes':>12} {'list bytes':>12} "
        f"{'ratio':>7}"
    ]
    ratios = {}
    for name, result in results.items():
        for stats in result.steps:
            if stats.stored_embeddings == 0:
                continue
            ratio = stats.list_bytes / stats.storage_bytes
            ratios.setdefault(name, []).append(ratio)
            lines.append(
                f"{name:<15} {stats.step + 1:>5} {stats.storage_bytes:>12,} "
                f"{stats.list_bytes:>12,} {ratio:>7.2f}"
            )
    lines += [
        "",
        "paper (Fig 9): compression grows with depth, reaching several",
        "  orders of magnitude by depth 5-6 (our runs stop at depth 3-4,",
        "  where the paper's curves are also still in the single digits).",
    ]
    report("fig9", "Figure 9: ODAG vs embedding-list serialized size", lines)

    for name, series in ratios.items():
        # ODAGs win at the deepest level and the win grows with depth.
        assert series[-1] > 1.0, name
        assert series[-1] >= max(series[:-1]) * 0.9, name
    # The exhaustive unlabeled workload compresses strictly better with
    # every level (single pattern per size, maximal prefix sharing).
    youtube = ratios["Youtube-Motifs"]
    assert all(b > a for a, b in zip(youtube, youtube[1:]))
