"""Pattern-aware planner speedup: guided vs. exhaustive matching.

The exhaustive filter-process matcher is *exploration-agnostic*: it
extends every canonical embedding in every direction and lets the
application filter reject candidates after the fact.  The planner
(:mod:`repro.plan`) compiles the query into a matching order with
per-step constraints and symmetry-breaking restrictions, so the runtime
only proposes candidates that can still become a match.

This bench runs both modes on bundled datasets across query shapes and
reports the headline planner metric: **extension candidates generated**
— a machine-independent measure of explored search space (reported next
to wall-clock, which on small cores understates the win).  Matches must
agree exactly between the modes (hard assert), and the aggregate
candidate reduction must reach the >= 3x acceptance bar.

``BENCH_QUICK=1`` shrinks the workload to a tiny random graph so CI can
smoke-run the bench in seconds.
"""

import os
import time

from repro.apps import match_vertex_sets, run_matching
from repro.core import ArabesqueConfig
from repro.datasets import citeseer_like, mico_like
from repro.graph import gnm_random_graph, strip_labels
from repro.plan import NAMED_SHAPES, compile_plan

from _harness import fmt_count, report

QUICK = os.environ.get("BENCH_QUICK", "") not in ("", "0", "false", "no")

#: Aggregate acceptance bar: guided must generate >= 3x fewer candidates.
TARGET_CANDIDATE_RATIO = 3.0


def _workloads():
    """(graph name, graph, query name, induced) tuples to measure."""
    if QUICK:
        tiny = strip_labels(gnm_random_graph(40, 100, seed=7))
        return [
            ("tiny-gnm", tiny, "triangle", True),
            ("tiny-gnm", tiny, "square", True),
            ("tiny-gnm", tiny, "diamond", False),
        ]
    citeseer = strip_labels(citeseer_like(scale=0.3))
    citeseer_small = strip_labels(citeseer_like(scale=0.15))
    mico = strip_labels(mico_like(scale=0.002))
    return [
        ("citeseer-0.3", citeseer, "triangle", True),
        ("citeseer-0.3", citeseer, "square", True),
        ("citeseer-0.3", citeseer, "diamond", True),
        ("citeseer-0.3", citeseer, "house", True),
        ("citeseer-0.15", citeseer_small, "square", False),
        ("mico-0.002", mico, "triangle", True),
        ("mico-0.002", mico, "square", True),
        ("mico-0.002", mico, "diamond", True),
    ]


def _timed(graph, query, induced, guided, plan=None):
    config = ArabesqueConfig(collect_outputs=True)
    started = time.perf_counter()
    result = run_matching(
        graph, query, induced=induced, guided=guided, config=config, plan=plan
    )
    return time.perf_counter() - started, result


def run_planner_speedup():
    rows = []
    total_exhaustive = 0
    total_guided = 0
    for graph_name, graph, query_name, induced in _workloads():
        query = NAMED_SHAPES[query_name]
        plan = compile_plan(query.canonical(), induced=induced)
        exhaustive_wall, exhaustive = _timed(graph, query, induced, guided=False)
        guided_wall, guided = _timed(graph, query, induced, guided=True, plan=plan)
        assert match_vertex_sets(exhaustive) == match_vertex_sets(guided), (
            f"guided and exhaustive disagree on {query_name} @ {graph_name}"
        )
        total_exhaustive += exhaustive.total_candidates
        total_guided += guided.total_candidates
        ratio = exhaustive.total_candidates / max(1, guided.total_candidates)
        speedup = exhaustive_wall / max(1e-9, guided_wall)
        rows.append(
            f"{graph_name:<14} {query_name:<9} "
            f"{'ind' if induced else 'mono':<5} "
            f"{guided.num_outputs:>8,} "
            f"{fmt_count(exhaustive.total_candidates):>10} "
            f"{fmt_count(guided.total_candidates):>10} "
            f"{ratio:>7.1f}x "
            f"{exhaustive_wall:>7.2f}s {guided_wall:>7.2f}s {speedup:>6.1f}x"
            f"   |Aut|={plan.num_automorphisms}"
        )
    aggregate = total_exhaustive / max(1, total_guided)
    lines = [
        f"{'graph':<14} {'query':<9} {'sem':<5} {'matches':>8} "
        f"{'cand(ex)':>10} {'cand(gd)':>10} {'c-ratio':>8} "
        f"{'wall(ex)':>8} {'wall(gd)':>8} {'w-ratio':>7}",
        *rows,
        "",
        f"aggregate candidates: {fmt_count(total_exhaustive)} exhaustive vs "
        f"{fmt_count(total_guided)} guided = {aggregate:.1f}x fewer "
        f"(target >= {TARGET_CANDIDATE_RATIO:.0f}x)",
        "matches agree exactly on every workload (hard-asserted)",
        "candidate counts are machine-independent; wall-clock shown for "
        "reference (quick mode)" if QUICK else
        "candidate counts are machine-independent; wall-clock gains are "
        "core-count-limited",
    ]
    report(
        "planner_speedup",
        "Pattern-aware planner: guided vs exhaustive matching",
        lines,
    )
    assert aggregate >= TARGET_CANDIDATE_RATIO, (
        f"aggregate candidate reduction {aggregate:.2f}x misses the "
        f"{TARGET_CANDIDATE_RATIO}x bar"
    )
    return aggregate


def test_planner_speedup(benchmark):
    outcome = {}

    def run_all():
        outcome["aggregate"] = run_planner_speedup()
        return outcome["aggregate"]

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    assert outcome["aggregate"] >= TARGET_CANDIDATE_RATIO


if __name__ == "__main__":  # pragma: no cover
    run_planner_speedup()
