"""Pattern-aware planner speedup: guided vs. exhaustive matching.

The exhaustive filter-process matcher is *exploration-agnostic*: it
extends every canonical embedding in every direction and lets the
application filter reject candidates after the fact.  The planner
(:mod:`repro.plan`) compiles the query into a matching order with
per-step constraints and symmetry-breaking restrictions, so the runtime
only proposes candidates that can still become a match.

This bench runs both modes on bundled datasets across query shapes and
reports the headline planner metric: **extension candidates generated**
— a machine-independent measure of explored search space (reported next
to wall-clock, which on small cores understates the win).  Matches must
agree exactly between the modes (hard assert), and the aggregate
candidate reduction must reach the >= 3x acceptance bar.

A second section measures the **guided × storage interplay** (ROADMAP
open item): guided partial matches of one induced query all share one
quick pattern, so they collapse into a single ODAG whose cross-product
paths must be re-validated at read time — overhead that buys nothing,
because the plan's symmetry restrictions already make every stored path
unique.  The section runs guided matching under ODAG, list, and adaptive
storage, hard-asserts byte-identical results, and reports the spurious
read-back work and wall-clock ratio.  Its verdict is why the session
facade (:mod:`repro.session`) defaults guided pattern queries to list
storage.

A third section measures **plan-guided FSM** (the ROADMAP's "plan-guided
FSM" item): level-wise candidate growth with per-level batched plan
DAGs, parent MNI domains pushed down as per-leaf whitelists, and
Apriori pruning — against the exhaustive edge-exploration FSM that
covers all patterns in one run.  Frequent patterns and supports must
agree exactly (hard assert), and the aggregate extension-candidate
reduction must reach the >= 2x acceptance bar.

A fourth section measures **multi-query plan DAGs** (the ROADMAP's
"multi-query plans" item): the whole motif distribution answered in ONE
DAG-guided engine run versus one guided run per motif pattern.  Sibling
motifs share their common subpattern's exploration prefix, so the DAG
generates (and stores) shared partial matches once; the distribution
must equal both the per-pattern guided counts and the exhaustive
``MotifCounting`` oracle (hard assert), and the DAG must generate >=
1.5x fewer extension candidates than the per-pattern runs combined.

A fifth section measures the **CSR + bitset graph core** against the
dict/set representation it replaced: the same guided partial-match
states are replayed through the current kernel (CSR adjacency rows,
big-int bitset whitelists, uniform-edge-label shortcut) and through a
faithful snapshot of the pre-refactor kernel (tuple rows, frozenset
membership, ``(u, v) -> eid`` dict lookups, genexp whitelist filters).
Candidate pools and survivor verdicts must agree candidate-for-candidate
(hard assert), the best wall-clock ratio must reach the >= 1.5x
acceptance bar on a full-scale workload, and the numbers land in
machine-readable ``results/BENCH_graphcore.json``.

A sixth section measures the **statistics-driven cost-based planner**
(:mod:`repro.plan.stats` + :mod:`repro.plan.cost`) against the
pattern-only degree heuristic it extends: each labeled workload is run
once under the heuristic's matching order and once under the
catalog-priced order, with hard asserts that the match sets agree, that
the cost-based order generates **no more** extension candidates than the
heuristic on every workload (ties — unlabeled or statistics-blind cases
— fall back to the heuristic order by construction), strictly fewer in
aggregate, and that on the adversarial ``skewed`` dataset the wall-clock
win reaches the >= 1.2x bar.  Machine-readable copy:
``results/BENCH_cost_planner.json``.

``BENCH_QUICK=1`` shrinks the workloads to tiny graphs so CI can
smoke-run the bench in seconds (the graph-core and cost-planner timing
bars are waived in quick mode — tiny replays are noise-dominated — but
the equivalence oracles and the JSON artifacts are not).
"""

import dataclasses
import os
import sys
import time

from repro.apps import enumerate_motif_patterns, match_vertex_sets
from repro.core import STORAGE_MODES, Pattern
from repro.datasets import citeseer_like, mico_like, skewed_label_graph
from repro.graph import assign_labels, from_bitset, gnm_random_graph, strip_labels
from repro.plan import (
    NAMED_SHAPES,
    build_catalog,
    build_plan_dag,
    choose_order,
    compile_plan,
    guided_survivors,
)
from repro.plan.dag import DagStepper, mask_bundle
from repro.plan.planner import restrict_plan
from repro.session import Miner

from _harness import fmt_count, report, report_json

QUICK = os.environ.get("BENCH_QUICK", "") not in ("", "0", "false", "no")

#: Aggregate acceptance bar: guided must generate >= 3x fewer candidates.
TARGET_CANDIDATE_RATIO = 3.0

#: FSM acceptance bar: guided FSM must generate >= 2x fewer extension
#: candidates than the exhaustive edge-exploration run.
TARGET_FSM_CANDIDATE_RATIO = 2.0

#: Multi-query acceptance bar: one DAG-guided motif run must generate
#: >= 1.5x fewer extension candidates than per-pattern guided runs.
TARGET_DAG_CANDIDATE_RATIO = 1.5

#: Graph-core acceptance bar: the CSR/bitset kernel must replay guided
#: states >= 1.5x faster than the legacy dict/set kernel on at least one
#: full-scale workload.
TARGET_GRAPHCORE_WALL_RATIO = 1.5

#: Fused DAG stepper acceptance bar: pool-level mask algebra must replay
#: the labeled motif-batch exploration tree >= 1.3x faster than the
#: per-candidate probe loop it fused (``candidates()`` + ``check()``).
TARGET_DAG_FUSED_WALL_RATIO = 1.3

#: Cost-planner acceptance bar: on the adversarial ``skewed`` dataset
#: the catalog-priced order must beat the degree heuristic's order by
#: >= 1.2x wall-clock (candidate counts are hard-asserted <= on every
#: workload regardless).
TARGET_COST_WALL_RATIO = 1.2


def _workloads():
    """(graph name, graph, query name, induced) tuples to measure."""
    if QUICK:
        tiny = strip_labels(gnm_random_graph(40, 100, seed=7))
        return [
            ("tiny-gnm", tiny, "triangle", True),
            ("tiny-gnm", tiny, "square", True),
            ("tiny-gnm", tiny, "diamond", False),
        ]
    citeseer = strip_labels(citeseer_like(scale=0.3))
    citeseer_small = strip_labels(citeseer_like(scale=0.15))
    mico = strip_labels(mico_like(scale=0.002))
    return [
        ("citeseer-0.3", citeseer, "triangle", True),
        ("citeseer-0.3", citeseer, "square", True),
        ("citeseer-0.3", citeseer, "diamond", True),
        ("citeseer-0.3", citeseer, "house", True),
        ("citeseer-0.15", citeseer_small, "square", False),
        ("mico-0.002", mico, "triangle", True),
        ("mico-0.002", mico, "square", True),
        ("mico-0.002", mico, "diamond", True),
    ]


def _session_for(miners, graph):
    """One warmed `Miner` per graph: the untimed warm-up query builds the
    step-0 universe (and primes session caches) outside every timed
    window, so mode/storage timings compare exploration cost only."""
    miner = miners.get(id(graph))
    if miner is None:
        miner = Miner(graph)
        miner.match(NAMED_SHAPES["edge"]).count()  # untimed warm-up
        miners[id(graph)] = miner
    return miner


def _timed(miner, query, induced, guided, plan=None):
    request = miner.match(query, induced=induced)
    if guided:
        request.plan(plan) if plan is not None else request.guided()
    else:
        request.exhaustive()
    started = time.perf_counter()
    result = request.run()
    return time.perf_counter() - started, result.raw


def run_planner_speedup():
    rows = []
    total_exhaustive = 0
    total_guided = 0
    miners = {}
    workload_payloads = []
    for graph_name, graph, query_name, induced in _workloads():
        miner = _session_for(miners, graph)
        query = NAMED_SHAPES[query_name]
        plan = compile_plan(query.canonical(), induced=induced)
        exhaustive_wall, exhaustive = _timed(miner, query, induced, guided=False)
        guided_wall, guided = _timed(miner, query, induced, guided=True, plan=plan)
        assert match_vertex_sets(exhaustive) == match_vertex_sets(guided), (
            f"guided and exhaustive disagree on {query_name} @ {graph_name}"
        )
        total_exhaustive += exhaustive.total_candidates
        total_guided += guided.total_candidates
        ratio = exhaustive.total_candidates / max(1, guided.total_candidates)
        speedup = exhaustive_wall / max(1e-9, guided_wall)
        workload_payloads.append(
            {
                "graph": graph_name,
                "query": query_name,
                "induced": induced,
                "matches": guided.num_outputs,
                "candidates_exhaustive": exhaustive.total_candidates,
                "candidates_guided": guided.total_candidates,
                "candidate_ratio": round(ratio, 3),
            }
        )
        rows.append(
            f"{graph_name:<14} {query_name:<9} "
            f"{'ind' if induced else 'mono':<5} "
            f"{guided.num_outputs:>8,} "
            f"{fmt_count(exhaustive.total_candidates):>10} "
            f"{fmt_count(guided.total_candidates):>10} "
            f"{ratio:>7.1f}x "
            f"{exhaustive_wall:>7.2f}s {guided_wall:>7.2f}s {speedup:>6.1f}x"
            f"   |Aut|={plan.num_automorphisms}"
        )
    aggregate = total_exhaustive / max(1, total_guided)
    report_json(
        "BENCH_planner",
        {
            "bench": "planner_speedup",
            "quick": QUICK,
            "target_candidate_ratio": TARGET_CANDIDATE_RATIO,
            "aggregate_candidate_ratio": round(aggregate, 3),
            "total_candidates_exhaustive": total_exhaustive,
            "total_candidates_guided": total_guided,
            "workloads": workload_payloads,
        },
    )
    lines = [
        f"{'graph':<14} {'query':<9} {'sem':<5} {'matches':>8} "
        f"{'cand(ex)':>10} {'cand(gd)':>10} {'c-ratio':>8} "
        f"{'wall(ex)':>8} {'wall(gd)':>8} {'w-ratio':>7}",
        *rows,
        "",
        f"aggregate candidates: {fmt_count(total_exhaustive)} exhaustive vs "
        f"{fmt_count(total_guided)} guided = {aggregate:.1f}x fewer "
        f"(target >= {TARGET_CANDIDATE_RATIO:.0f}x)",
        "matches agree exactly on every workload (hard-asserted)",
        "candidate counts are machine-independent; wall-clock shown for "
        "reference (quick mode)" if QUICK else
        "candidate counts are machine-independent; wall-clock gains are "
        "core-count-limited",
        "machine-readable copy: results/BENCH_planner.json",
    ]
    report(
        "planner_speedup",
        "Pattern-aware planner: guided vs exhaustive matching",
        lines,
    )
    assert aggregate >= TARGET_CANDIDATE_RATIO, (
        f"aggregate candidate reduction {aggregate:.2f}x misses the "
        f"{TARGET_CANDIDATE_RATIO}x bar"
    )
    return aggregate


def run_guided_storage_interplay():
    """List vs. ODAG (vs. adaptive) storage under guided matching.

    Returns the aggregate odag/list wall ratio; hard-asserts that every
    storage mode produces byte-identical results.
    """
    rows = []
    total_wall = {mode: 0.0 for mode in STORAGE_MODES}
    total_spurious = {mode: 0 for mode in STORAGE_MODES}
    miners = {}
    for graph_name, graph, query_name, induced in _workloads():
        if not induced:
            continue  # guided monomorphic runs exist; induced is the hot case
        # Warmed shared session + one untimed run of this exact query:
        # plan compilation, step-0 setup, and first-run warm-up all land
        # outside the timed windows, so the three storage timings differ
        # by storage cost only (mode order can't bias the ratio).
        miner = _session_for(miners, graph)
        miner.match(NAMED_SHAPES[query_name]).run()
        signatures = set()
        per_mode = {}
        for mode in STORAGE_MODES:
            started = time.perf_counter()
            result = miner.match(NAMED_SHAPES[query_name]).storage(mode).run()
            wall = time.perf_counter() - started
            spurious = sum(s.spurious_discarded for s in result.raw.steps)
            per_mode[mode] = (wall, spurious, result.raw.peak_storage_bytes)
            total_wall[mode] += wall
            total_spurious[mode] += spurious
            signatures.add(result.signature())
        assert len(signatures) == 1, (
            f"storage modes disagree on {query_name} @ {graph_name}"
        )
        odag_wall, odag_spur, odag_peak = per_mode["odag"]
        list_wall, list_spur, list_peak = per_mode["list"]
        assert list_spur == 0, "list storage cannot produce spurious paths"
        rows.append(
            f"{graph_name:<14} {query_name:<9} "
            f"{odag_wall:>8.3f}s {list_wall:>8.3f}s "
            f"{odag_wall / max(1e-9, list_wall):>6.2f}x "
            f"{fmt_count(odag_spur):>9} "
            f"{fmt_count(odag_peak):>9} {fmt_count(list_peak):>9}"
        )
    ratio = total_wall["odag"] / max(1e-9, total_wall["list"])
    verdict = (
        "list storage wins under guided matching -> the session facade "
        "defaults guided queries to .storage('list')"
        if ratio >= 1.0
        else "ODAG kept up under guided matching on this machine — facade "
        "default worth revisiting"
    )
    lines = [
        f"{'graph':<14} {'query':<9} {'wall(od)':>9} {'wall(li)':>9} "
        f"{'ratio':>7} {'spur(od)':>9} {'peak(od)':>9} {'peak(li)':>9}",
        *rows,
        "",
        f"aggregate guided wall-clock: odag {total_wall['odag']:.3f}s, "
        f"list {total_wall['list']:.3f}s, adaptive "
        f"{total_wall['adaptive']:.3f}s -> odag/list = {ratio:.2f}x",
        f"spurious ODAG paths re-validated (pure overhead; guided paths "
        f"are symmetry-unique): {fmt_count(total_spurious['odag'])} "
        f"vs 0 under list storage",
        "results byte-identical across storage modes (hard-asserted)",
        verdict,
    ]
    report(
        "planner_guided_storage",
        "Guided matching x embedding storage: list vs ODAG",
        lines,
    )
    return ratio


def _fsm_workloads():
    """(graph name, graph, support threshold, max edges) to mine.

    Depth is the decisive variable: the exhaustive strategy's embedding
    store (and with it the candidate pool it extends) grows level over
    level, while guided FSM's parent-domain whitelists tighten — so the
    workloads mine to 4 edges where both effects are visible.
    """
    if QUICK:
        return [("citeseer-0.05", citeseer_like(scale=0.05), 6, 4)]
    return [
        ("citeseer-0.15", citeseer_like(scale=0.15), 15, 4),
        ("citeseer-0.3", citeseer_like(scale=0.3), 30, 4),
        ("mico-0.002", mico_like(scale=0.002), 8, 4),
    ]


def run_guided_fsm_speedup():
    """Plan-guided vs exhaustive FSM: identical tables, fewer candidates.

    Returns the aggregate exhaustive/guided extension-candidate ratio;
    hard-asserts pattern/support equality per workload and the >= 2x
    aggregate reduction bar.
    """
    rows = []
    total_exhaustive = 0
    total_guided = 0
    for graph_name, graph, support, max_edges in _fsm_workloads():
        miner = Miner(graph)
        started = time.perf_counter()
        guided = miner.fsm(support, max_edges=max_edges).run()
        guided_wall = time.perf_counter() - started
        started = time.perf_counter()
        exhaustive = (
            miner.fsm(support, max_edges=max_edges)
            .exhaustive()
            .collect(False)
            .run()
        )
        exhaustive_wall = time.perf_counter() - started
        assert guided.patterns() == exhaustive.patterns(), (
            f"guided and exhaustive FSM disagree on {graph_name} "
            f"(support={support})"
        )
        details = guided.guided_details
        guided_candidates = guided.raw.total_candidates
        exhaustive_candidates = exhaustive.raw.total_candidates
        total_guided += guided_candidates
        total_exhaustive += exhaustive_candidates
        ratio = exhaustive_candidates / max(1, guided_candidates)
        pruned = sum(level.pruned for level in details.levels)
        rows.append(
            f"{graph_name:<14} {support:>4} {max_edges:>3} "
            f"{len(guided.patterns()):>6,} "
            f"{details.engine_runs:>6,} {pruned:>6,} "
            f"{fmt_count(exhaustive_candidates):>10} "
            f"{fmt_count(guided_candidates):>10} {ratio:>7.1f}x "
            f"{exhaustive_wall:>7.2f}s {guided_wall:>7.2f}s "
            f"{exhaustive_wall / max(1e-9, guided_wall):>6.1f}x"
        )
    aggregate = total_exhaustive / max(1, total_guided)
    lines = [
        f"{'graph':<14} {'θ':>4} {'ME':>3} {'freq':>6} {'runs':>6} "
        f"{'pruned':>6} {'cand(ex)':>10} {'cand(gd)':>10} {'c-ratio':>8} "
        f"{'wall(ex)':>8} {'wall(gd)':>8} {'w-ratio':>7}",
        *rows,
        "",
        f"aggregate candidates: {fmt_count(total_exhaustive)} exhaustive vs "
        f"{fmt_count(total_guided)} guided = {aggregate:.1f}x fewer "
        f"(target >= {TARGET_FSM_CANDIDATE_RATIO:.0f}x)",
        "frequent patterns and MNI supports agree exactly on every "
        "workload (hard-asserted)",
        "guided = one batched multi-query plan DAG per level + "
        "parent-domain push-down + Apriori pruning; 'pruned' candidates "
        "never reach the engine",
    ]
    report(
        "planner_guided_fsm",
        "Plan-guided FSM: guided vs exhaustive candidate generation",
        lines,
    )
    assert aggregate >= TARGET_FSM_CANDIDATE_RATIO, (
        f"aggregate FSM candidate reduction {aggregate:.2f}x misses the "
        f"{TARGET_FSM_CANDIDATE_RATIO}x bar"
    )
    return aggregate


def _motif_workloads():
    """(graph name, graph, max motif size) for the multi-query section.

    ``max_size=4`` is where sharing pays: the order-4 motif batch shares
    its step-0/1 prefix across every sibling.  The *labeled*
    distributions are the headline — thousands of labeled candidates
    collapse onto a few hundred shared trie prefixes, so per-pattern
    execution re-pays the same early steps thousands of times — while
    the unlabeled sparse workload is the honest floor: only 8 siblings,
    final-level pools dominate, and sharing buys a modest factor.
    """
    if QUICK:
        return [("tiny-gnm", strip_labels(gnm_random_graph(40, 100, seed=7)), 4)]
    return [
        ("citeseer-0.15-lab", citeseer_like(scale=0.15), 4),
        ("citeseer-0.3-lab", citeseer_like(scale=0.3), 4),
        ("mico-0.002", strip_labels(mico_like(scale=0.002)), 4),
    ]


def run_multi_query_motifs():
    """One DAG-guided motif run vs one guided run per motif pattern.

    Returns the aggregate per-pattern/DAG extension-candidate ratio;
    hard-asserts distribution equality (DAG == per-pattern == exhaustive
    ``MotifCounting``) per workload and the >= 1.5x reduction bar.
    """
    from repro.apps import MotifCounting, motif_counts
    from repro.core import ArabesqueConfig, run_computation

    rows = []
    total_dag = 0
    total_per_pattern = 0
    for graph_name, graph, max_size in _motif_workloads():
        miner = Miner(graph)
        started = time.perf_counter()
        dag_result = miner.motifs(max_size).run()
        dag_wall = time.perf_counter() - started
        assert dag_result.dag is not None
        batch = dag_result.dag.patterns
        per_pattern_candidates = 0
        started = time.perf_counter()
        per_pattern_counts = {}
        for pattern in batch:
            solo = miner.match(pattern, induced=True).collect(False).run()
            per_pattern_candidates += solo.raw.total_candidates
            if solo.num_matches:
                per_pattern_counts[pattern] = solo.num_matches
        per_pattern_wall = time.perf_counter() - started
        exhaustive = run_computation(
            graph,
            MotifCounting(max_size),
            ArabesqueConfig(collect_outputs=False),
        )
        assert dag_result.counts() == per_pattern_counts == motif_counts(
            exhaustive
        ), f"motif strategies disagree on {graph_name}"
        dag_candidates = dag_result.total_candidates
        total_dag += dag_candidates
        total_per_pattern += per_pattern_candidates
        ratio = per_pattern_candidates / max(1, dag_candidates)
        rows.append(
            f"{graph_name:<18} {max_size:>2} {len(batch):>6,} "
            f"{dag_result.dag.num_nodes:>5}/{dag_result.dag.total_plan_steps:<5} "
            f"{fmt_count(per_pattern_candidates):>10} "
            f"{fmt_count(dag_candidates):>10} {ratio:>7.2f}x "
            f"{per_pattern_wall:>7.2f}s {dag_wall:>7.2f}s "
            f"{per_pattern_wall / max(1e-9, dag_wall):>6.1f}x"
        )
    aggregate = total_per_pattern / max(1, total_dag)
    lines = [
        f"{'graph':<18} {'k':>2} {'motifs':>6} {'nodes/steps':>11} "
        f"{'cand(per)':>10} {'cand(dag)':>10} {'c-ratio':>8} "
        f"{'wall(per)':>8} {'wall(dag)':>8} {'w-ratio':>7}",
        *rows,
        "",
        f"aggregate candidates: {fmt_count(total_per_pattern)} per-pattern "
        f"guided vs {fmt_count(total_dag)} DAG-guided = {aggregate:.2f}x "
        f"fewer (target >= {TARGET_DAG_CANDIDATE_RATIO:.1f}x)",
        "distributions agree exactly with per-pattern guided counts AND "
        "the exhaustive MotifCounting oracle (hard-asserted)",
        "one engine run answers the full distribution: shared motif "
        "prefixes are generated and stored once, not once per pattern",
        "labeled batches (thousands of candidates, -lab rows) are where "
        "sharing pays ~10x; sparse unlabeled batches (8 siblings, "
        "final-level pools dominate) set the honest ~1.3x floor",
    ]
    report(
        "planner_multi_query",
        "Multi-query plan DAGs: one motif-distribution run vs per-pattern",
        lines,
    )
    assert aggregate >= TARGET_DAG_CANDIDATE_RATIO, (
        f"aggregate DAG candidate reduction {aggregate:.2f}x misses the "
        f"{TARGET_DAG_CANDIDATE_RATIO}x bar"
    )
    return aggregate


class _LegacyGraph:
    """Snapshot of the pre-refactor ``LabeledGraph``, for the bake-off.

    Same accessor surface and same containers the guided kernel ran on
    before the CSR/bitset core — tuple adjacency rows, per-vertex
    frozensets, a ``(u, v) -> eid`` dict, a label-index dict — rebuilt
    from the current graph so both kernels see identical topology.  The
    legacy kernel below calls these *methods* exactly as the old code
    did; hand-inlining the lookups here would flatter the baseline.
    """

    __slots__ = (
        "num_vertices",
        "_vertex_labels",
        "_neighbors",
        "_neighbor_sets",
        "_edge_index",
        "_edge_labels",
        "_label_index",
    )

    def __init__(self, graph):
        n = graph.num_vertices
        self.num_vertices = n
        self._vertex_labels = tuple(graph.vertex_labels)
        self._neighbors = tuple(tuple(graph.neighbors(v)) for v in range(n))
        self._neighbor_sets = tuple(frozenset(row) for row in self._neighbors)
        self._edge_labels = tuple(graph.edge_labels)
        self._edge_index = {(u, v): eid for eid, u, v in graph.edge_iter()}
        index = {}
        for vertex, label in enumerate(self._vertex_labels):
            index.setdefault(label, []).append(vertex)
        self._label_index = {
            label: tuple(ids) for label, ids in index.items()
        }

    def vertices(self):
        return range(self.num_vertices)

    def vertex_label(self, v):
        return self._vertex_labels[v]

    def vertices_with_label(self, label):
        return self._label_index.get(label, ())

    def degree(self, v):
        return len(self._neighbors[v])

    def neighbors(self, v):
        return self._neighbors[v]

    def adjacent(self, u, v):
        return v in self._neighbor_sets[u]

    def edge_label(self, eid):
        return self._edge_labels[eid]

    def edge_id(self, u, v):
        key = (u, v) if u < v else (v, u)
        try:
            return self._edge_index[key]
        except KeyError:
            raise KeyError(f"no edge between {u} and {v}") from None

    def nbytes_estimate(self) -> int:
        """Rough resident size of the legacy containers (getsizeof sums)."""
        total = sys.getsizeof(self._vertex_labels)
        total += sys.getsizeof(self._edge_labels)
        for row, row_set in zip(self._neighbors, self._neighbor_sets):
            total += sys.getsizeof(row) + sys.getsizeof(row_set)
        total += sys.getsizeof(self._edge_index)
        total += sum(sys.getsizeof(key) for key in self._edge_index)
        total += sys.getsizeof(self._label_index)
        total += sum(sys.getsizeof(ids) for ids in self._label_index.values())
        return total


def _legacy_plan(plan):
    """The same compiled plan with frozenset whitelists (the old type)."""
    steps = tuple(
        dataclasses.replace(
            step,
            allowed=None
            if step.allowed is None
            else frozenset(from_bitset(step.allowed)),
        )
        for step in plan.steps
    )
    return dataclasses.replace(plan, steps=steps)


def _legacy_step_zero_pool(plan, graph):
    """Verbatim pre-refactor ``step_zero_pool`` (range fallback and all)."""
    first = plan.steps[0]
    if first.allowed is not None:
        return tuple(sorted(first.allowed))
    pool = graph.vertices_with_label(first.vertex_label)
    if len(pool) == graph.num_vertices:
        return graph.vertices()
    return pool


def _legacy_candidates(plan, graph, words):
    """Verbatim pre-refactor ``guided_candidates`` on the legacy layout."""
    position = len(words)
    step = plan.steps[position]
    if not step.back_edges:
        return _legacy_step_zero_pool(plan, graph)
    anchor = min(
        (words[earlier] for earlier, _ in step.back_edges),
        key=lambda vertex: (graph.degree(vertex), vertex),
    )
    neighbors = graph.neighbors(anchor)
    if step.allowed is None:
        return neighbors
    allowed = step.allowed
    return tuple(word for word in neighbors if word in allowed)


def _legacy_check(plan, graph, parent_words, word):
    """Verbatim pre-refactor ``guided_extension_check``."""
    position = len(parent_words)
    step = plan.steps[position]
    if graph.vertex_label(word) != step.vertex_label:
        return False
    if step.allowed is not None and word not in step.allowed:
        return False
    if word in parent_words:
        return False
    for earlier, edge_label in step.back_edges:
        matched = parent_words[earlier]
        if not graph.adjacent(word, matched):
            return False
        if graph.edge_label(graph.edge_id(word, matched)) != edge_label:
            return False
    if plan.induced:
        for earlier in step.back_non_edges:
            if graph.adjacent(word, parent_words[earlier]):
                return False
    for earlier in step.must_exceed:
        if parent_words[earlier] >= word:
            return False
    for earlier in step.must_precede:
        if parent_words[earlier] <= word:
            return False
    return True


def _collect_guided_states(plan, graph):
    """Every surviving partial match (< full size) — the replay inputs.

    This IS the guided exploration tree: replaying per-state survivor
    generation over these states exercises exactly the per-step work the
    engine's task loop performs, minus task bookkeeping.
    """
    states = []
    stack = [()]
    while stack:
        words = stack.pop()
        states.append(words)
        _, survivors = guided_survivors(plan, graph, words)
        for word in survivors:
            extended = words + (word,)
            if len(extended) < plan.num_steps:
                stack.append(extended)
    return states


def _verify_kernels_agree(plan, graph, old_plan, old_graph, states):
    """Candidate-for-candidate equivalence oracle; returns stream totals.

    The legacy kernel's pool + per-word verdicts must reproduce the fused
    kernel's pool size and exact survivor stream at every state.
    """
    candidates = 0
    survivors = 0
    for words in states:
        num_candidates, new_survivors = guided_survivors(plan, graph, words)
        old_pool = _legacy_candidates(old_plan, old_graph, words)
        old_survivors = tuple(
            word
            for word in old_pool
            if _legacy_check(old_plan, old_graph, words, word)
        )
        assert num_candidates == len(old_pool), (
            f"pool sizes diverge at {words}: "
            f"csr={num_candidates} legacy={len(old_pool)}"
        )
        assert new_survivors == old_survivors, (
            f"survivors diverge at {words}: csr={new_survivors[:10]}... "
            f"legacy={old_survivors[:10]}..."
        )
        candidates += num_candidates
        survivors += len(new_survivors)
    return candidates, survivors


def _replay_csr(plan, graph, states):
    for words in states:
        guided_survivors(plan, graph, words)


def _replay_legacy(old_plan, old_graph, states):
    for words in states:
        for word in _legacy_candidates(old_plan, old_graph, words):
            _legacy_check(old_plan, old_graph, words, word)


def _best_of(repeats, fn):
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def _collect_dag_states(dag, graph):
    """Every surviving partial match of the DAG exploration tree."""
    stepper = DagStepper(dag, graph)
    states = []
    stack = [()]
    while stack:
        words = stack.pop()
        states.append(words)
        _, survivors = stepper.step(words)
        for word in survivors:
            extended = words + (word,)
            if stepper.extendable(extended):
                stack.append(extended)
    return states


def _replay_dag_fused(dag, graph, states):
    """The fused kernel: pool-level mask algebra + hybrid row fallback."""
    stepper = DagStepper(dag, graph)
    for words in states:
        stepper.step(words)


def _replay_dag_unfused(dag, graph, states):
    """The per-candidate kernel the fusion replaced: one memoized pool,
    then one full ``check`` probe per pool element — exactly what the
    runtime's task loop ran before ``DagStepper.step`` existed."""
    stepper = DagStepper(dag, graph)
    for words in states:
        for word in stepper.candidates(words):
            stepper.check(graph, words, word)


def _verify_dag_kernels_agree(dag, graph, states):
    """Fused ``step`` vs per-candidate ``candidates``+``check`` oracle.

    Pool sizes and survivor streams must agree at every replayed state;
    returns the stream totals for the report.
    """
    fused = DagStepper(dag, graph)
    unfused = DagStepper(dag, graph)
    candidates = 0
    survivors = 0
    for words in states:
        num_candidates, fused_survivors = fused.step(words)
        pool = unfused.candidates(words)
        unfused_survivors = tuple(
            word for word in pool if unfused.check(graph, words, word)
        )
        assert num_candidates == len(pool), (
            f"DAG pool sizes diverge at {words}: "
            f"fused={num_candidates} unfused={len(pool)}"
        )
        assert fused_survivors == unfused_survivors, (
            f"DAG survivors diverge at {words}: "
            f"fused={fused_survivors[:10]}... "
            f"unfused={unfused_survivors[:10]}..."
        )
        candidates += num_candidates
        survivors += len(fused_survivors)
    return candidates, survivors


def _dag_workloads():
    """(graph name, labeled graph, motif max size) for the fused stepper.

    The labeled motif batch is the fused kernel's home turf: dozens of
    member plans share trie nodes, so the unfused kernel pays a
    ``check`` probe per (pool element x member) while the fused kernel
    answers each node with a handful of bitset ``&``s.
    """
    if QUICK:
        tiny = assign_labels(gnm_random_graph(40, 100, seed=7), 3, seed=7)
        return [("tiny-gnm", tiny, 3)]
    return [("citeseer-0.3", citeseer_like(scale=0.3), 3)]


def _graphcore_workloads():
    """(graph name, graph, query name, induced, min whitelist degree).

    A non-``None`` degree pushes a degree-``>=k`` domain onto every plan
    step via :func:`restrict_plan` — the FSM-shaped whitelisted case
    where the legacy kernel pays a genexp + frozenset probe per pool
    element and the CSR core pays one ``&``.
    """
    if QUICK:
        tiny = strip_labels(gnm_random_graph(40, 100, seed=7))
        return [
            ("tiny-gnm", tiny, "triangle", True, None),
            ("tiny-gnm", tiny, "square", True, 2),
        ]
    citeseer = strip_labels(citeseer_like(scale=0.3))
    mico = strip_labels(mico_like(scale=0.002))
    return [
        ("citeseer-0.3", citeseer, "triangle", True, None),
        ("citeseer-0.3", citeseer, "square", True, 2),
        ("citeseer-0.3", citeseer, "house", True, 2),
        ("mico-0.002", mico, "triangle", True, 2),
        ("mico-0.002", mico, "square", True, None),
    ]


def run_graphcore_speedup():
    """CSR/bitset kernel vs the legacy dict/set kernel on replayed states.

    Two sub-sections: single-plan guided states through the CSR core vs
    the pre-refactor dict/set kernel, and the fused multi-query
    ``DagStepper.step`` vs the per-candidate ``candidates()``+``check()``
    loop it replaced, on the labeled motif batch.  Returns the best
    single-plan wall ratio; hard-asserts stream equivalence always, and
    outside quick mode the >= 1.5x single-plan bar, the >=
    {TARGET_DAG_FUSED_WALL_RATIO}x fused-DAG bar, and >= 1.0x on the
    sparse citeseer triangle (the degree-adaptive fallback's regression
    case).  Writes ``results/BENCH_graphcore.json``.
    """
    repeats = 3
    rows = []
    workload_payloads = []
    cores = {}
    best_ratio = 0.0
    total_legacy = 0.0
    total_csr = 0.0
    for graph_name, graph, query_name, induced, min_degree in (
        _graphcore_workloads()
    ):
        plan = compile_plan(NAMED_SHAPES[query_name].canonical(), induced=induced)
        workload = query_name
        if min_degree is not None:
            domain = frozenset(
                v for v in graph.vertices() if graph.degree(v) >= min_degree
            )
            plan = restrict_plan(plan, {pv: domain for pv in plan.order})
            workload += f"+dom{min_degree}"
        if id(graph) not in cores:
            cores[id(graph)] = _LegacyGraph(graph)
        old_graph = cores[id(graph)]
        old_plan = _legacy_plan(plan)
        states = _collect_guided_states(plan, graph)
        candidates, survivors = _verify_kernels_agree(
            plan, graph, old_plan, old_graph, states
        )
        wall_csr = _best_of(
            repeats, lambda: _replay_csr(plan, graph, states)
        )
        wall_legacy = _best_of(
            repeats,
            lambda: _replay_legacy(old_plan, old_graph, states),
        )
        ratio = wall_legacy / max(1e-9, wall_csr)
        best_ratio = max(best_ratio, ratio)
        total_legacy += wall_legacy
        total_csr += wall_csr
        csr_bytes = graph.memory_nbytes()
        legacy_bytes = old_graph.nbytes_estimate()
        workload_payloads.append(
            {
                "graph": graph_name,
                "query": workload,
                "induced": induced,
                "states": len(states),
                "candidates": candidates,
                "survivors": survivors,
                "wall_legacy_s": round(wall_legacy, 6),
                "wall_csr_s": round(wall_csr, 6),
                "wall_ratio": round(ratio, 3),
                "csr_graph_bytes": csr_bytes,
                "legacy_graph_bytes_est": legacy_bytes,
            }
        )
        rows.append(
            f"{graph_name:<14} {workload:<14} "
            f"{len(states):>8,} {fmt_count(candidates):>10} "
            f"{fmt_count(survivors):>10} "
            f"{wall_legacy:>8.3f}s {wall_csr:>8.3f}s {ratio:>6.2f}x "
            f"{fmt_count(legacy_bytes):>10} {fmt_count(csr_bytes):>10}"
        )
    aggregate = total_legacy / max(1e-9, total_csr)

    # -- fused DAG stepper vs the per-candidate loop it replaced --------
    dag_rows = []
    dag_payloads = []
    best_dag_ratio = 0.0
    for graph_name, graph, max_size in _dag_workloads():
        batch = enumerate_motif_patterns(graph, max_size, min_size=2)
        dag = build_plan_dag(batch, induced=True)
        mask_bundle(dag, graph)
        states = _collect_dag_states(dag, graph)
        candidates, survivors = _verify_dag_kernels_agree(dag, graph, states)
        wall_fused = _best_of(
            repeats, lambda: _replay_dag_fused(dag, graph, states)
        )
        wall_unfused = _best_of(
            repeats, lambda: _replay_dag_unfused(dag, graph, states)
        )
        dag_ratio = wall_unfused / max(1e-9, wall_fused)
        best_dag_ratio = max(best_dag_ratio, dag_ratio)
        dag_payloads.append(
            {
                "graph": graph_name,
                "workload": f"motifs<={max_size}",
                "members": len(batch),
                "states": len(states),
                "candidates": candidates,
                "survivors": survivors,
                "wall_unfused_s": round(wall_unfused, 6),
                "wall_fused_s": round(wall_fused, 6),
                "wall_ratio": round(dag_ratio, 3),
            }
        )
        dag_rows.append(
            f"{graph_name:<14} motifs<={max_size:<6} {len(batch):>7} "
            f"{len(states):>8,} {fmt_count(candidates):>10} "
            f"{fmt_count(survivors):>10} "
            f"{wall_unfused:>8.3f}s {wall_fused:>8.3f}s {dag_ratio:>6.2f}x"
        )

    payload = {
        "bench": "graphcore_speedup",
        "quick": QUICK,
        "repeats": repeats,
        "target_wall_ratio": TARGET_GRAPHCORE_WALL_RATIO,
        "best_wall_ratio": round(best_ratio, 3),
        "aggregate_wall_ratio": round(aggregate, 3),
        "target_dag_fused_wall_ratio": TARGET_DAG_FUSED_WALL_RATIO,
        "best_dag_fused_wall_ratio": round(best_dag_ratio, 3),
        "workloads": workload_payloads,
        "dag_workloads": dag_payloads,
    }
    report_json("BENCH_graphcore", payload)
    lines = [
        f"{'graph':<14} {'workload':<14} {'states':>8} {'cand':>10} "
        f"{'surv':>10} {'wall(dict)':>9} {'wall(csr)':>9} {'ratio':>7} "
        f"{'B(dict)':>10} {'B(csr)':>10}",
        *rows,
        "",
        f"best workload wall ratio: {best_ratio:.2f}x, aggregate "
        f"{aggregate:.2f}x (target best >= "
        f"{TARGET_GRAPHCORE_WALL_RATIO:.1f}x"
        f"{', waived in quick mode' if QUICK else ''})",
        "candidate pools and survivor verdicts agree "
        "candidate-for-candidate between kernels (hard-asserted)",
        "+domN workloads push a degree->=N whitelist onto every step: "
        "the legacy kernel filters pools by genexp + frozenset probe, "
        "the CSR core intersects bitsets with one '&'",
        "",
        "fused DAG stepper (pool-level mask algebra + degree-adaptive "
        "row fallback) vs the per-candidate probe loop it replaced:",
        f"{'graph':<14} {'workload':<14} {'members':>7} {'states':>8} "
        f"{'cand':>10} {'surv':>10} {'wall(old)':>9} {'wall(new)':>9} "
        f"{'ratio':>7}",
        *dag_rows,
        f"best fused-DAG wall ratio: {best_dag_ratio:.2f}x (target >= "
        f"{TARGET_DAG_FUSED_WALL_RATIO:.1f}x"
        f"{', waived in quick mode' if QUICK else ''})",
        "machine-readable copy: results/BENCH_graphcore.json",
    ]
    report(
        "graphcore_speedup",
        "CSR + bitset graph core vs legacy dict/set kernel",
        lines,
    )
    if not QUICK:
        assert best_ratio >= TARGET_GRAPHCORE_WALL_RATIO, (
            f"best graph-core wall ratio {best_ratio:.2f}x misses the "
            f"{TARGET_GRAPHCORE_WALL_RATIO}x bar"
        )
        assert best_dag_ratio >= TARGET_DAG_FUSED_WALL_RATIO, (
            f"fused DAG wall ratio {best_dag_ratio:.2f}x misses the "
            f"{TARGET_DAG_FUSED_WALL_RATIO}x bar"
        )
        for entry in workload_payloads:
            if entry["graph"].startswith("citeseer") and (
                entry["query"] == "triangle"
            ):
                assert entry["wall_ratio"] >= 1.0, (
                    "sparse citeseer triangle fell below 1.0x "
                    f"({entry['wall_ratio']}x): the degree-adaptive row "
                    "fallback regressed"
                )
    return best_ratio


#: The skewed dataset's adversarial queries: the frequent crowd label
#: (0) sits on the highest-degree pattern vertex, so the pattern-only
#: heuristic anchors there while the catalog anchors at the rare label.
_WEDGE_101 = Pattern((1, 0, 1), ((0, 1, 0), (1, 2, 0))).canonical()
_STAR3_0111 = Pattern(
    (0, 1, 1, 1), ((0, 1, 0), (0, 2, 0), (0, 3, 0))
).canonical()
_TRIANGLE_001 = Pattern(
    (0, 0, 1), ((0, 1, 0), (0, 2, 0), (1, 2, 0))
).canonical()


def _rare_common_wedge(graph):
    """A labeled wedge built from the graph's own statistics: rare
    leaves on the most frequent center — adversarial for the heuristic
    on any labeled dataset, without hard-coding its label alphabet."""
    catalog = build_catalog(graph)
    by_frequency = sorted(
        catalog.label_frequency, key=catalog.label_frequency.__getitem__
    )
    rare, common = by_frequency[0], by_frequency[-1]
    return Pattern(
        (rare, common, rare), ((0, 1, 0), (1, 2, 0))
    ).canonical()


def _cost_workloads():
    """(graph name, graph, query name, pattern, induced) to price.

    The skewed fixture rows are the headline (the heuristic anchors at
    the 15x-more-frequent crowd label); the citeseer rows show the same
    effect at milder natural skew; the label-5/4 wedges use citeseer's
    rarest labels; the unlabeled-shape square is the tie case — the
    catalog cannot beat the heuristic there, so the heuristic order
    must be kept and both runs must meter identical candidate streams.
    """
    if QUICK:
        skewed = skewed_label_graph(scale=0.35)
        return [
            ("skewed-0.35", skewed, "wedge-101", _WEDGE_101, True),
            ("skewed-0.35", skewed, "triangle-001", _TRIANGLE_001, True),
        ]
    skewed = skewed_label_graph()
    citeseer = citeseer_like(scale=0.3)
    mico = mico_like(scale=0.005)
    return [
        ("skewed", skewed, "wedge-101", _WEDGE_101, True),
        ("skewed", skewed, "star3-0111", _STAR3_0111, True),
        ("skewed", skewed, "triangle-001", _TRIANGLE_001, True),
        (
            "citeseer-0.3",
            citeseer,
            "wedge-505",
            Pattern((5, 0, 5), ((0, 1, 0), (1, 2, 0))).canonical(),
            True,
        ),
        (
            "citeseer-0.3",
            citeseer,
            "wedge-405",
            Pattern((4, 0, 5), ((0, 1, 0), (1, 2, 0))).canonical(),
            True,
        ),
        (
            "citeseer-0.3",
            citeseer,
            "square",
            NAMED_SHAPES["square"].canonical(),
            True,
        ),
        ("mico-0.005", mico, "wedge-rare", _rare_common_wedge(mico), True),
    ]


def run_cost_model():
    """Catalog-priced orders vs the degree heuristic's orders.

    Returns the aggregate heuristic/cost extension-candidate ratio;
    hard-asserts per workload that the match sets agree and that the
    cost-based order generates <= the heuristic's candidates, that the
    aggregate reduction is strict, and (outside quick mode) that the
    best skewed-fixture wall-clock win reaches the >= 1.2x bar.
    """
    repeats = 3
    rows = []
    workload_payloads = []
    total_cost = 0
    total_heuristic = 0
    best_skewed_wall = 0.0
    for graph_name, graph, query_name, pattern, induced in _cost_workloads():
        catalog = build_catalog(graph)
        choice = choose_order(pattern, catalog)
        cost_plan = compile_plan(pattern, induced=induced, catalog=catalog)
        heuristic_plan = compile_plan(pattern, induced=induced)
        miner = Miner(graph)
        # Untimed warm-up primes the session outside the timed windows.
        miner.match(pattern, induced=induced).plan(heuristic_plan).run()

        def best_run(plan):
            best = float("inf")
            result = None
            for _ in range(repeats):
                started = time.perf_counter()
                outcome = (
                    miner.match(pattern, induced=induced).plan(plan).run()
                )
                best = min(best, time.perf_counter() - started)
                result = outcome
            return best, result.raw

        heuristic_wall, heuristic = best_run(heuristic_plan)
        cost_wall, cost = best_run(cost_plan)
        assert match_vertex_sets(cost) == match_vertex_sets(heuristic), (
            f"orders disagree on {query_name} @ {graph_name}"
        )
        assert cost.total_candidates <= heuristic.total_candidates, (
            f"cost-based order generated MORE candidates than the "
            f"heuristic on {query_name} @ {graph_name}: "
            f"{cost.total_candidates} > {heuristic.total_candidates}"
        )
        if not choice.cost_based:
            assert cost.total_candidates == heuristic.total_candidates, (
                f"heuristic-tie workload {query_name} @ {graph_name} "
                "metered different candidate streams"
            )
        total_cost += cost.total_candidates
        total_heuristic += heuristic.total_candidates
        ratio = heuristic.total_candidates / max(1, cost.total_candidates)
        wall_ratio = heuristic_wall / max(1e-9, cost_wall)
        if graph_name.startswith("skewed"):
            best_skewed_wall = max(best_skewed_wall, wall_ratio)
        workload_payloads.append(
            {
                "graph": graph_name,
                "query": query_name,
                "winner": "cost" if choice.cost_based else "heuristic",
                "order_cost": list(cost_plan.order),
                "order_heuristic": list(heuristic_plan.order),
                "matches": cost.num_outputs,
                "candidates_cost": cost.total_candidates,
                "candidates_heuristic": heuristic.total_candidates,
                "candidate_ratio": round(ratio, 3),
                "wall_ratio": round(wall_ratio, 3),
            }
        )
        rows.append(
            f"{graph_name:<14} {query_name:<13} "
            f"{'cost' if choice.cost_based else 'heur':<5} "
            f"{cost.num_outputs:>7,} "
            f"{fmt_count(heuristic.total_candidates):>10} "
            f"{fmt_count(cost.total_candidates):>10} {ratio:>7.2f}x "
            f"{heuristic_wall:>7.3f}s {cost_wall:>7.3f}s "
            f"{wall_ratio:>6.2f}x"
        )
    aggregate = total_heuristic / max(1, total_cost)
    report_json(
        "BENCH_cost_planner",
        {
            "bench": "cost_model",
            "quick": QUICK,
            "target_cost_wall_ratio": TARGET_COST_WALL_RATIO,
            "aggregate_candidate_ratio": round(aggregate, 3),
            "total_candidates_cost": total_cost,
            "total_candidates_heuristic": total_heuristic,
            "best_skewed_wall_ratio": round(best_skewed_wall, 3),
            "workloads": workload_payloads,
        },
    )
    lines = [
        f"{'graph':<14} {'query':<13} {'win':<5} {'matches':>7} "
        f"{'cand(heur)':>10} {'cand(cost)':>10} {'c-ratio':>8} "
        f"{'wall(hr)':>8} {'wall(ct)':>8} {'w-ratio':>7}",
        *rows,
        "",
        f"aggregate candidates: {fmt_count(total_heuristic)} heuristic vs "
        f"{fmt_count(total_cost)} cost-based = {aggregate:.2f}x fewer "
        "(must be strictly > 1)",
        f"best skewed wall-clock win: {best_skewed_wall:.2f}x (target >= "
        f"{TARGET_COST_WALL_RATIO:.1f}x"
        f"{', waived in quick mode' if QUICK else ''})",
        "cost-based orders generate <= the heuristic's candidates on "
        "EVERY workload; ties keep the heuristic order and its exact "
        "candidate stream (both hard-asserted)",
        "match sets agree exactly on every workload (hard-asserted)",
        "machine-readable copy: results/BENCH_cost_planner.json",
    ]
    report(
        "planner_cost_model",
        "Cost-based planner: catalog-priced orders vs degree heuristic",
        lines,
    )
    assert total_cost < total_heuristic, (
        f"cost-based planning must strictly reduce aggregate candidates "
        f"({total_cost} vs {total_heuristic})"
    )
    if not QUICK:
        assert best_skewed_wall >= TARGET_COST_WALL_RATIO, (
            f"skewed wall-clock win {best_skewed_wall:.2f}x misses the "
            f"{TARGET_COST_WALL_RATIO}x bar"
        )
    return aggregate


def test_planner_speedup(benchmark):
    outcome = {}

    def run_all():
        outcome["aggregate"] = run_planner_speedup()
        return outcome["aggregate"]

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    assert outcome["aggregate"] >= TARGET_CANDIDATE_RATIO


def test_guided_storage_interplay(benchmark):
    benchmark.pedantic(run_guided_storage_interplay, rounds=1, iterations=1)


def test_guided_fsm_speedup(benchmark):
    outcome = {}

    def run_all():
        outcome["aggregate"] = run_guided_fsm_speedup()
        return outcome["aggregate"]

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    assert outcome["aggregate"] >= TARGET_FSM_CANDIDATE_RATIO


def test_multi_query_motifs(benchmark):
    outcome = {}

    def run_all():
        outcome["aggregate"] = run_multi_query_motifs()
        return outcome["aggregate"]

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    assert outcome["aggregate"] >= TARGET_DAG_CANDIDATE_RATIO


def test_graphcore_speedup(benchmark):
    outcome = {}

    def run_all():
        outcome["best"] = run_graphcore_speedup()
        return outcome["best"]

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    if not QUICK:
        assert outcome["best"] >= TARGET_GRAPHCORE_WALL_RATIO


def test_cost_model(benchmark):
    outcome = {}

    def run_all():
        outcome["aggregate"] = run_cost_model()
        return outcome["aggregate"]

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    assert outcome["aggregate"] > 1.0


if __name__ == "__main__":  # pragma: no cover
    run_planner_speedup()
    run_guided_storage_interplay()
    run_guided_fsm_speedup()
    run_multi_query_motifs()
    run_graphcore_speedup()
    run_cost_model()
