"""Figure 11: slowdown when two-level pattern aggregation is removed.

Without the quick-pattern level, every mapped embedding triggers a graph
isomorphism (canonical labeling) — the paper measures 12.7x - 41.5x
slowdowns, "since [the system] spends most of its CPU cycles on computing
graph isomorphism".

Here the ablation flips ``ArabesqueConfig.two_level_aggregation``; the
slowdown shows up directly in wall-clock because the isomorphism runs are
real computation in both systems.
"""

from repro.apps import FrequentSubgraphMining, MotifCounting
from repro.core import ArabesqueConfig, run_computation
from repro.datasets import citeseer_like, mico_like, patents_like
from repro.graph import strip_labels

from _harness import report

WORKLOADS = [
    (
        "Motifs-MiCo (MS=3)",
        lambda: strip_labels(mico_like(scale=0.004)),
        lambda: MotifCounting(3),
    ),
    (
        "Motifs-Patents (MS=3)",
        lambda: strip_labels(patents_like(scale=0.0004)),
        lambda: MotifCounting(3),
    ),
    (
        "FSM-CiteSeer (S=300)",
        lambda: citeseer_like(scale=0.6),
        lambda: FrequentSubgraphMining(180, max_edges=3),
    ),
]


def test_fig11_two_level_aggregation(benchmark):
    rows = {}

    def run_all():
        for name, make_graph, make_app in WORKLOADS:
            graph = make_graph()
            measured = {}
            for two_level in (True, False):
                config = ArabesqueConfig(
                    two_level_aggregation=two_level, collect_outputs=False
                )
                result = run_computation(graph, make_app(), config)
                measured[two_level] = result
            rows[name] = measured
        return rows

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = [
        f"{'workload':<22} {'slowdown':>9} {'isomorphism runs':>17} "
        f"{'(with two-level)':>16}"
    ]
    slowdowns = {}
    for name, measured in rows.items():
        with_tl = measured[True]
        without = measured[False]
        slowdown = without.wall_seconds / with_tl.wall_seconds
        slowdowns[name] = slowdown
        lines.append(
            f"{name:<22} {slowdown:>9.2f} {without.isomorphism_runs:>17,} "
            f"{with_tl.isomorphism_runs:>16,}"
        )
    lines += [
        "",
        "paper (Fig 11): Motifs-MiCo 41.5x, Motifs-Patents 19.6x,",
        "  FSM-CiteSeer 33.6x, FSM-Patents 12.7x — the slowdown grows with",
        "  instance size; our instances are miniature, so factors are lower.",
    ]
    report("fig11", "Figure 11: slowdown without two-level aggregation", lines)

    for name, measured in rows.items():
        # Same answers with and without the optimization.
        assert (
            measured[True].output_aggregates == measured[False].output_aggregates
        ), name
        # Removing it multiplies isomorphism runs by orders of magnitude...
        assert (
            measured[False].isomorphism_runs
            > 50 * measured[True].isomorphism_runs
        ), name
    # ...and costs real time on every workload.
    for name, slowdown in slowdowns.items():
        assert slowdown > 1.5, name
