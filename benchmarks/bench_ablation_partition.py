"""Ablation: load balance of the cost-estimated ODAG partitioning.

Section 5.3 balances work by splitting the overapproximated path space
using per-element path counts as cost estimates, dealing rank blocks
round-robin.  This bench measures the resulting per-worker shares on a
hub-heavy graph across worker counts and block granularities, against the
ideal (perfectly even) split.
"""

from repro.core import OdagStore, PatternCanonicalizer, measure_partition
from repro.core.canonical import canonicalize_vertex_set
from repro.core.embedding import VERTEX_EXPLORATION, make_embedding
from repro.baselines import enumerate_connected_subgraphs
from repro.datasets import mico_like
from repro.graph import strip_labels

from _harness import report


def build_store(graph, size):
    canonicalizer = PatternCanonicalizer()
    store = OdagStore()
    for members in enumerate_connected_subgraphs(graph, size):
        words = canonicalize_vertex_set(graph, members)
        embedding = make_embedding(graph, VERTEX_EXPLORATION, words)
        pattern, _ = canonicalizer.canonicalize(embedding.pattern())
        store.add(pattern, words)
    return store


def test_ablation_partition_balance(benchmark):
    graph = strip_labels(mico_like(scale=0.006))
    rows = []

    def run_all():
        store = build_store(graph, 3)
        for workers in (4, 10, 20):
            for blocks_per_worker in (1, 8, 32):
                store.blocks_per_worker = blocks_per_worker
                partition = measure_partition(store, workers)
                rows.append((workers, blocks_per_worker, partition))
        store.blocks_per_worker = 32
        return rows

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = [f"{'workers':>7} {'blocks/worker':>13} {'imbalance':>9} {'max share':>9}"]
    for workers, blocks, partition in rows:
        lines.append(
            f"{workers:>7} {blocks:>13} {partition.imbalance():>9.3f} "
            f"{partition.max_share:>9,}"
        )
    lines += [
        "",
        "blocks/worker = 1 is a contiguous range per worker; finer blocks",
        "interleave hub-heavy rank regions across workers (section 5.3).",
    ]
    report("ablation_partition", "Ablation: partition block granularity", lines)

    # Every partition is exact (no loss, no duplication).
    totals = {p.total for _, _, p in rows}
    assert len(totals) == 1
    # Fine blocks at 20 workers stay near-even.
    fine = [p for w, b, p in rows if w == 20 and b == 32][0]
    assert fine.imbalance() < 1.25
    # Contiguous split is never better than the finest interleave.
    for workers in (4, 10, 20):
        coarse = [p for w, b, p in rows if w == workers and b == 1][0]
        finest = [p for w, b, p in rows if w == workers and b == 32][0]
        assert finest.imbalance() <= coarse.imbalance() + 0.05
